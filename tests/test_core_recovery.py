"""Crash-recovery tests (paper Section 3.3).

Two guarantees are exercised: recovery is byte-exact for everything that
reached durable media (after a flush), and unflushed writes lose at most
the window since the last flush — never older durable state.
"""

import numpy as np
import pytest

from repro.core import ICASHConfig, ICASHController
from repro.core.recovery import recover, verify_recovery
from repro.sim.request import BLOCK_SIZE

from test_core_controller import family_dataset, small_config


def run_mixed_workload(controller, shadow, n_ops=800, seed=11,
                       write_fraction=0.4):
    gen = np.random.default_rng(seed)
    for _ in range(n_ops):
        lba = int(gen.integers(0, shadow.shape[0]))
        if gen.random() < write_fraction:
            content = shadow[lba].copy()
            span = int(gen.integers(1, 150))
            start = int(gen.integers(0, BLOCK_SIZE - span))
            content[start:start + span] = gen.integers(0, 256, span)
            shadow[lba] = content
            controller.write(lba, [content])
        else:
            controller.read(lba)


class TestExactRecoveryAfterFlush:
    def test_every_block_recovers(self):
        dataset = family_dataset()
        shadow = dataset.copy()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        run_mixed_workload(controller, shadow)
        controller.flush()
        image = recover(controller)
        for lba in range(shadow.shape[0]):
            assert np.array_equal(image.read(lba), shadow[lba]), \
                f"block {lba} recovered wrong"

    def test_verify_recovery_helper(self):
        dataset = family_dataset()
        shadow = dataset.copy()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        run_mixed_workload(controller, shadow, n_ops=300)
        controller.flush()
        expected = {lba: shadow[lba] for lba in range(0, 256, 16)}
        outcome = verify_recovery(controller, expected)
        assert all(outcome.values())

    def test_recovery_with_tiny_delta_pool(self):
        """Evicted deltas must recover through the log."""
        dataset = family_dataset()
        shadow = dataset.copy()
        controller = ICASHController(
            dataset, small_config(delta_ram_bytes=8 * 1024))
        controller.ingest()
        run_mixed_workload(controller, shadow, n_ops=600)
        controller.flush()
        image = recover(controller)
        for lba in range(0, 256, 3):
            assert np.array_equal(image.read(lba), shadow[lba])


class TestLossWindow:
    def test_unflushed_write_may_lose_only_recent_data(self):
        dataset = family_dataset()
        controller = ICASHController(
            dataset, small_config(flush_interval=10_000))
        controller.ingest()
        controller.flush()
        lba = next(iter(controller.delta_map_snapshot()))
        durable = recover(controller).read(lba)
        # One unflushed small write...
        newer = durable.copy()
        newer[0:20] = 0xEE
        controller.write(lba, [newer])
        recovered = recover(controller).read(lba)
        # ...recovers to *some* prior durable version, never garbage:
        assert (np.array_equal(recovered, durable)
                or np.array_equal(recovered, newer))

    def test_flush_closes_the_window(self):
        dataset = family_dataset()
        controller = ICASHController(
            dataset, small_config(flush_interval=10_000))
        controller.ingest()
        lba = next(iter(controller.delta_map_snapshot()))
        newer = recover(controller).read(lba)
        newer[0:20] = 0xEE
        controller.write(lba, [newer])
        controller.flush()
        assert np.array_equal(recover(controller).read(lba), newer)


class TestStaleRecordFiltering:
    def test_spilled_block_ignores_old_log_records(self, rng):
        """A block that logged a delta and was later spilled must recover
        from its SSD copy, not the stale log record."""
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        lba = next(iter(controller.delta_map_snapshot()))
        small = dataset[lba].copy()
        small[0:30] = 1
        controller.write(lba, [small])
        controller.flush()  # delta for `small` is in the log
        full = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        controller.write(lba, [full])  # spills to SSD
        assert lba in controller.spilled_lbas
        assert np.array_equal(recover(controller).read(lba), full)

    def test_logged_blocks_counter(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        image = recover(controller)
        assert image.logged_blocks > 0
