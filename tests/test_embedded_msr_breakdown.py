"""Tests for the embedded (hardware) controller variant, the MSR trace
adapter and the latency-path breakdown."""

import numpy as np
import pytest

from repro.core.embedded import EmbeddedICASHController, EmbeddedSpec
from repro.experiments.breakdown import (read_breakdown,
                                         semiconductor_fraction,
                                         write_breakdown)
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config, make_system
from repro.sim.request import BLOCK_SIZE
from repro.workloads.msr import MSRTraceWorkload, parse_msr_row

from test_core_controller import family_dataset, small_config


class TestEmbeddedController:
    def make(self, **spec_kwargs) -> EmbeddedICASHController:
        return EmbeddedICASHController(
            family_dataset(), small_config(),
            embedded=EmbeddedSpec(**spec_kwargs))

    def test_content_roundtrip(self, rng):
        controller = self.make()
        controller.ingest()
        shadow = {}
        for _ in range(300):
            lba = int(rng.integers(0, 256))
            if rng.random() < 0.5:
                content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
                controller.write(lba, [content])
                shadow[lba] = content
            elif lba in shadow:
                _, (out,) = controller.read(lba)
                assert np.array_equal(out, shadow[lba])

    def test_host_cpu_is_zero(self):
        controller = self.make()
        controller.ingest()
        controller.read(5)
        assert controller.cpu_time == 0.0
        assert controller.embedded_cpu_time > 0.0

    def test_codec_runs_slower_on_embedded_core(self):
        controller = self.make(codec_slowdown=3.0)
        assert controller.config.decompress_s == pytest.approx(3.0e-5)

    def test_dma_charged_per_request(self):
        controller = self.make(dma_per_request_s=50e-6)
        latency, _ = controller.read(0)
        assert latency >= 50e-6

    def test_small_board_dram_caps_budgets(self):
        controller = EmbeddedICASHController(
            family_dataset(),
            small_config(data_ram_bytes=64 << 20,
                         delta_ram_bytes=64 << 20),
            embedded=EmbeddedSpec(dram_bytes=8 << 20))
        total = controller.config.data_ram_bytes \
            + controller.config.delta_ram_bytes
        assert total <= (8 << 20) + (1 << 20)

    def test_runner_sees_no_storage_cpu(self):
        from repro.workloads import SysBenchWorkload
        workload = SysBenchWorkload(scale=0.1, n_requests=600)
        controller = EmbeddedICASHController(
            workload.build_dataset(), make_icash_config(workload))
        result = run_benchmark(workload, controller,
                               warmup_fraction=0.3)
        assert result.storage_cpu_s == 0.0


class TestMSRParsing:
    def test_row_parses(self):
        ts, op, start, nblocks, size = parse_msr_row(
            ["128166372003061629", "prxy", "0", "Read", "8192", "8192",
             "531"])
        assert op == "read"
        assert start == 2
        assert nblocks == 2

    def test_partial_block_rounds_up(self):
        _, _, start, nblocks, _ = parse_msr_row(
            ["0", "h", "0", "Write", "100", "100", "1"])
        assert start == 0
        assert nblocks == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op type"):
            parse_msr_row(["0", "h", "0", "Trim", "0", "4096", "1"])

    def test_short_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            parse_msr_row(["0", "h", "0"])

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            parse_msr_row(["0", "h", "0", "Read", "0", "0", "1"])


@pytest.fixture
def msr_csv(tmp_path):
    rows = []
    for i in range(120):
        offset = ((i * 37) % 64) * BLOCK_SIZE
        op = "Write" if i % 3 == 0 else "Read"
        rows.append(f"{i},host,0,{op},{offset},{BLOCK_SIZE},100")
    path = tmp_path / "msr.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


class TestMSRTraceWorkload:
    def test_footprint_compacted(self, msr_csv):
        workload = MSRTraceWorkload(msr_csv)
        assert workload.n_requests == 120
        assert workload.n_blocks == 64
        assert "64 distinct blocks" in workload.footprint_summary()

    def test_stream_is_restartable(self, msr_csv):
        workload = MSRTraceWorkload(msr_csv)
        a = [(r.op, r.lba, r.nblocks) for r in workload.requests()]
        b = [(r.op, r.lba, r.nblocks) for r in workload.requests()]
        assert a == b

    def test_drives_icash_with_verification(self, msr_csv):
        workload = MSRTraceWorkload(msr_csv)
        system = make_system("icash", workload)
        result = run_benchmark(workload, system, verify_reads=True,
                               warmup_fraction=0.2)
        assert result.verified_reads > 0

    def test_max_requests_bound(self, msr_csv):
        workload = MSRTraceWorkload(msr_csv, max_requests=10)
        assert workload.n_requests == 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MSRTraceWorkload(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# only a comment\n")
        with pytest.raises(ValueError, match="usable"):
            MSRTraceWorkload(path)


class TestBreakdown:
    def run_element(self):
        from repro.workloads import SysBenchWorkload
        workload = SysBenchWorkload(scale=0.25, n_requests=2500)
        system = make_system("icash", workload)
        run_benchmark(workload, system, warmup_fraction=0.2)
        return system

    def test_read_breakdown_accounts_all_sources(self):
        system = self.run_element()
        breakdown = read_breakdown(system)
        assert breakdown.total > 0
        assert breakdown.fraction("SSD reference + RAM delta") > 0.3
        assert "read path breakdown" in breakdown.render()

    def test_write_breakdown_shows_ram_dominance(self):
        system = self.run_element()
        breakdown = write_breakdown(system)
        ram = (breakdown.fraction("delta buffered in RAM")
               + breakdown.fraction("reference self-delta in RAM")
               + breakdown.fraction("data block in RAM"))
        assert ram > 0.7

    def test_semiconductor_fraction_high(self):
        """The paper's core mechanism: most reads never touch the HDD."""
        system = self.run_element()
        assert semiconductor_fraction(system) > 0.9

    def test_empty_controller(self):
        from repro.core import ICASHController
        controller = ICASHController(family_dataset(), small_config())
        assert semiconductor_fraction(controller) == 1.0
        assert "no operations" in read_breakdown(controller).render()
