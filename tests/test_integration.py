"""End-to-end integration tests.

These drive the full pipeline — workload generator, the five storage
architectures, the experiment runner — with content verification on, and
assert the qualitative findings the reproduction is built around.
"""

import numpy as np
import pytest

from repro.core.recovery import recover
from repro.experiments.runner import run_benchmark, run_grid
from repro.experiments.systems import SYSTEM_NAMES, make_system
from repro.workloads import (MultiVMWorkload, SysBenchWorkload,
                             TPCCWorkload)


@pytest.fixture(scope="module")
def sysbench_grid():
    """One verified grid shared by this module's assertions."""
    return run_grid(
        lambda: SysBenchWorkload(scale=0.25, n_requests=3000),
        SYSTEM_NAMES, verify_reads=True, warmup_fraction=0.4)


class TestAllSystemsServeCorrectContent:
    def test_grid_verifies(self, sysbench_grid):
        for name, result in sysbench_grid.items():
            assert result.verified_reads > 0, name


class TestQualitativeFindings:
    """The paper's core claims, asserted against live runs."""

    def test_icash_reduces_ssd_writes_drastically(self, sysbench_grid):
        """Table 6's point: I-CASH writes the SSD far less than either
        cache baseline and less than pure SSD."""
        icash = sysbench_grid["icash"].ssd_write_ops
        assert icash < sysbench_grid["fusion-io"].ssd_write_ops / 2
        assert icash < sysbench_grid["lru"].ssd_write_ops / 2
        assert icash < sysbench_grid["dedup"].ssd_write_ops / 2

    def test_icash_write_latency_order_of_magnitude_better(
            self, sysbench_grid):
        """Figure 7's point: delta writes are RAM-speed."""
        assert sysbench_grid["icash"].write_mean_us * 5 \
            < sysbench_grid["fusion-io"].write_mean_us

    def test_icash_beats_raid_overall(self, sysbench_grid):
        assert sysbench_grid["icash"].transactions_per_s \
            > 1.5 * sysbench_grid["raid0"].transactions_per_s

    def test_icash_competitive_with_pure_ssd(self, sysbench_grid):
        """Using one tenth of the SSD, within reach of (or better than)
        a full-size pure-SSD system."""
        assert sysbench_grid["icash"].transactions_per_s \
            > 0.85 * sysbench_grid["fusion-io"].transactions_per_s

    def test_cpu_overhead_is_bounded(self, sysbench_grid):
        """Figure 6(b)'s point: the I-CASH computation is affordable."""
        icash = sysbench_grid["icash"].cpu_utilization
        fusion = sysbench_grid["fusion-io"].cpu_utilization
        assert icash - fusion < 0.15

    def test_block_population_structure(self):
        """Section 5.1: a small reference set covers most blocks."""
        workload = SysBenchWorkload(scale=0.25, n_requests=2000)
        system = make_system("icash", workload)
        run_benchmark(workload, system)
        counts = system.block_kind_counts()
        total = sum(counts.values())
        assert counts["reference"] / total < 0.25
        assert counts["associate"] / total > 0.5


class TestMultiVMIntegration:
    def test_five_vm_grid_verifies_and_icash_wins(self):
        factory = lambda: MultiVMWorkload(  # noqa: E731
            TPCCWorkload, n_vms=3, scale=0.1, n_requests_per_vm=600)
        results = run_grid(factory, ("fusion-io", "icash"),
                           verify_reads=True)
        assert results["icash"].verified_reads > 0
        # Cross-VM image similarity makes I-CASH at least competitive.
        assert results["icash"].transactions_per_s \
            > 0.9 * results["fusion-io"].transactions_per_s


class TestRecoveryAfterRealWorkload:
    def test_crash_after_flush_recovers_benchmark_state(self):
        workload = SysBenchWorkload(scale=0.1, n_requests=1200)
        system = make_system("icash", workload)
        run_benchmark(workload, system, flush_at_end=True)
        image = recover(system)
        shadow = workload.shadow
        mismatches = sum(
            1 for lba in range(workload.n_blocks)
            if not np.array_equal(image.read(lba), shadow[lba]))
        assert mismatches == 0
