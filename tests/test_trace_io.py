"""Tests for trace serialisation."""

import numpy as np

from repro.sim.request import OpType
from repro.workloads import TPCCWorkload
from repro.workloads.trace_io import load_trace, save_trace

from conftest import make_block


class TestTraceRoundtrip:
    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        assert save_trace(path, []) == 0
        assert list(load_trace(path)) == []

    def test_manual_requests_roundtrip(self, tmp_path):
        from repro.sim.request import make_read, make_write
        requests = [
            make_read(5, nblocks=2, vm_id=1),
            make_write(7, [make_block(1), make_block(2)], vm_id=3),
            make_read(0),
        ]
        path = tmp_path / "trace.npz"
        assert save_trace(path, requests) == 3
        loaded = list(load_trace(path))
        assert len(loaded) == 3
        for original, copy in zip(requests, loaded):
            assert copy.op == original.op
            assert copy.lba == original.lba
            assert copy.nblocks == original.nblocks
            assert copy.vm_id == original.vm_id
        assert np.array_equal(loaded[1].payload[0], make_block(1))
        assert np.array_equal(loaded[1].payload[1], make_block(2))

    def test_workload_trace_roundtrip(self, tmp_path):
        workload = TPCCWorkload(scale=0.05, n_requests=120)
        path = tmp_path / "tpcc.npz"
        count = save_trace(path, workload.requests())
        assert count == 120
        originals = list(workload.requests())
        for original, copy in zip(originals, load_trace(path)):
            assert copy.op == original.op
            assert copy.lba == original.lba
            assert copy.nblocks == original.nblocks
            if original.is_write:
                for a, b in zip(original.payload, copy.payload):
                    assert np.array_equal(a, b)

    def test_replayed_trace_drives_a_system(self, tmp_path):
        """A saved trace must be a drop-in replacement for the
        generator when replayed into a storage system."""
        from repro.baselines import PureSSD
        workload = TPCCWorkload(scale=0.05, n_requests=80)
        path = tmp_path / "replay.npz"
        save_trace(path, workload.requests())
        system = PureSSD(workload.build_dataset())
        for request in load_trace(path):
            system.process(request)
        assert system.stats.latency("read").count > 0
        assert system.stats.latency("write").count > 0
