"""Unit tests for IORequest and its constructors."""

import numpy as np
import pytest

from repro.sim.request import (BLOCK_SIZE, IORequest, OpType, make_read,
                               make_write)

from conftest import make_block


class TestIORequestValidation:
    def test_read_basics(self):
        req = IORequest(OpType.READ, lba=5, nblocks=3)
        assert req.is_read and not req.is_write
        assert req.size_bytes == 3 * BLOCK_SIZE
        assert list(req.lbas()) == [5, 6, 7]

    def test_write_carries_payload(self):
        req = IORequest(OpType.WRITE, 0, 2,
                        payload=[make_block(1), make_block(2)])
        assert req.is_write
        assert len(req.payload) == 2

    def test_negative_lba_rejected(self):
        with pytest.raises(ValueError, match="lba"):
            IORequest(OpType.READ, -1)

    def test_zero_nblocks_rejected(self):
        with pytest.raises(ValueError, match="nblocks"):
            IORequest(OpType.READ, 0, nblocks=0)

    def test_write_without_payload_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            IORequest(OpType.WRITE, 0, 1)

    def test_write_payload_count_must_match_nblocks(self):
        with pytest.raises(ValueError, match="spans"):
            IORequest(OpType.WRITE, 0, 2, payload=[make_block()])

    def test_write_payload_block_size_checked(self):
        bad = np.zeros(100, dtype=np.uint8)
        with pytest.raises(ValueError, match="bytes"):
            IORequest(OpType.WRITE, 0, 1, payload=[bad])

    def test_read_with_payload_rejected(self):
        with pytest.raises(ValueError, match="read requests"):
            IORequest(OpType.READ, 0, 1, payload=[make_block()])


class TestConvenienceConstructors:
    def test_make_read(self):
        req = make_read(9, nblocks=4, vm_id=2)
        assert req.op is OpType.READ
        assert req.lba == 9
        assert req.nblocks == 4
        assert req.vm_id == 2

    def test_make_write_infers_nblocks(self):
        req = make_write(3, [make_block(), make_block()])
        assert req.nblocks == 2
        assert req.lba == 3

    def test_default_vm_is_native_machine(self):
        assert make_read(0).vm_id == 0
