"""The persistent run ledger (``repro.ledger``; docs/LEDGER.md).

Four families of guarantees:

* **recording** — every entry point leaves a row carrying the full
  provenance and metric snapshot the schema promises, opt-out really
  records nothing, and re-recording identical work reuses the same
  content-hash ``run_id``;
* **determinism** — the canonical export is byte-identical whether a
  suite ran serially or fanned out across worker processes, and
  concurrent recorders from separate processes cannot corrupt the
  store;
* **analytics** — diffs surface metric deltas with provenance-aware
  hints, and the rolling median/MAD anomaly detector flags exactly the
  injected change among identical-seed reruns;
* **maintenance** — ``verify`` catches tampering and row/export parity
  gaps, ``export`` repairs them, ``prune`` retains only the newest
  rows.
"""

import json
import os
import sqlite3
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from functools import lru_cache
from types import SimpleNamespace

import pytest

from repro import ledger as ledger_module
from repro.ledger import (ANOMALY_Z, DEFAULT_WINDOW, FILTER_KEYS,
                          LEDGER_SCHEMA_VERSION, MIN_HISTORY, NULL_LEDGER,
                          PROVENANCE_FIELDS, SPEC_FIELDS, Anomaly,
                          LedgerWriter, default_ledger, detect_anomalies,
                          diff_rows, flatten_metrics, parse_filters,
                          sparkline)


# ---------------------------------------------------------------------------
# Small cached runs (module-wide; the ledger only reads RunResults)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _small_result(seed: int = 2011, delta_accept: int = 0,
                  engine: str = "legacy"):
    from repro.core import ICASHController
    from repro.experiments.runner import run_benchmark
    from repro.experiments.systems import make_icash_config, make_system
    from repro.workloads import SysBenchWorkload

    workload = SysBenchWorkload(scale=0.05, n_requests=300, seed=seed)
    if delta_accept:
        config = replace(make_icash_config(workload),
                         delta_accept_bytes=delta_accept)
        system = ICASHController(workload.build_dataset(), config)
    else:
        system = make_system("icash", workload)
    return run_benchmark(workload, system, engine=engine)


def _writer(tmp_path, name="led", **kwargs) -> LedgerWriter:
    return LedgerWriter(root=str(tmp_path / name), **kwargs)


# ---------------------------------------------------------------------------
# Recording and querying
# ---------------------------------------------------------------------------


class TestRecord:
    def test_identical_content_reuses_run_id(self, tmp_path):
        store = _writer(tmp_path)
        first = store.record(_small_result(), command="run",
                             spec={"seed": 2011})
        second = store.record(_small_result(), command="run",
                              spec={"seed": 2011})
        assert first == second
        assert len(first) == 16
        assert store.count() == 2
        assert [row.seq for row in store.rows()] == [1, 2]

    def test_content_changes_change_run_id(self, tmp_path):
        store = _writer(tmp_path)
        a = store.record(_small_result(), command="run",
                         spec={"seed": 2011})
        b = store.record(_small_result(seed=7), command="run",
                         spec={"seed": 7})
        c = store.record(_small_result(), command="other",
                         spec={"seed": 2011})
        assert len({a, b, c}) == 3

    def test_row_carries_schema_provenance_and_spec(self, tmp_path):
        store = _writer(tmp_path)
        store.record(_small_result(), command="run", spec={"seed": 2011})
        row = store.get("1")
        assert row.schema_version == LEDGER_SCHEMA_VERSION
        assert tuple(sorted(row.provenance)) \
            == tuple(sorted(PROVENANCE_FIELDS))
        assert tuple(sorted(row.spec)) == tuple(sorted(SPEC_FIELDS))
        assert row.spec["workload"] == "sysbench"
        assert row.spec["system"] == "icash"
        assert row.spec["seed"] == 2011
        assert row.provenance["schema"]["ledger"] \
            == LEDGER_SCHEMA_VERSION
        assert row.provenance["sim_wall_s"] > 0
        assert set(row.provenance["host"]) \
            == {"node", "machine", "system", "python"}
        assert "transactions_per_s" in row.metrics["scalars"]
        assert row.metrics["slo"]["breaches"] >= 0
        assert row.volatile["recorded_unix"] > 0

    def test_volatile_fields_do_not_feed_the_hash(self, tmp_path):
        early = _writer(tmp_path, "a", clock=lambda: 1000.0)
        late = _writer(tmp_path, "b", clock=lambda: 2000.0)
        run_a = early.record(_small_result(), command="run",
                             spec={"seed": 2011}, host_wall_s=1.0)
        run_b = late.record(_small_result(), command="run",
                            spec={"seed": 2011}, host_wall_s=9.9)
        assert run_a == run_b
        assert early.get("1").volatile != late.get("1").volatile

    def test_filters_and_last(self, tmp_path):
        store = _writer(tmp_path)
        store.record(_small_result(), command="run", spec={"seed": 2011})
        store.record(_small_result(seed=7), command="run",
                     spec={"seed": 7})
        store.record(_small_result(), command="bench",
                     spec={"seed": 2011})
        assert len(store.rows({"command": "run"})) == 2
        assert len(store.rows({"command": "run", "seed": 2011})) == 1
        assert len(store.rows({"workload": "sysbench"})) == 3
        newest = store.rows(last=2)
        assert [row.seq for row in newest] == [2, 3]
        with pytest.raises(ValueError, match="unknown filter"):
            store.rows({"figure": "6a"})

    def test_get_by_seq_prefix_and_ambiguity(self, tmp_path):
        store = _writer(tmp_path)
        run_a = store.record(_small_result(), command="run",
                             spec={"seed": 2011})
        run_b = store.record(_small_result(seed=7), command="run",
                             spec={"seed": 7})
        assert store.get("1").run_id == run_a
        assert store.get(run_b).seq == 2
        assert store.get(run_a[:8]).run_id == run_a
        common = os.path.commonprefix([run_a, run_b])
        with pytest.raises(KeyError, match="ambiguous"):
            store.get(common)
        with pytest.raises(KeyError, match="no ledger row"):
            store.get("99")
        with pytest.raises(KeyError, match="no ledger row"):
            store.get("feedfacefeedface")

    def test_parse_filters(self):
        assert parse_filters(["workload=tpcc", "seed=7"]) \
            == {"workload": "tpcc", "seed": "7"}
        assert parse_filters(None) == {}
        for bad in ("workload", "=tpcc", "figure=6a"):
            with pytest.raises(ValueError):
                parse_filters([bad])
        assert set(parse_filters([f"{k}=x" for k in FILTER_KEYS])) \
            == set(FILTER_KEYS)


# ---------------------------------------------------------------------------
# Opt-out: NULL_LEDGER, environment, flag
# ---------------------------------------------------------------------------


class TestOptOut:
    def test_null_ledger_is_inert(self):
        assert NULL_LEDGER.enabled is False
        assert NULL_LEDGER.record(object(), command="run") is None
        assert NULL_LEDGER.recorded == 0
        assert NULL_LEDGER.root is None

    def test_env_toggle_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert default_ledger() is NULL_LEDGER
        for off in ("false", "no", "OFF"):
            monkeypatch.setenv("REPRO_LEDGER", off)
            assert default_ledger() is NULL_LEDGER

    def test_flag_beats_enabled_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "led"))
        assert default_ledger(no_ledger=True) is NULL_LEDGER
        store = default_ledger()
        assert isinstance(store, LedgerWriter)
        assert store.root == str(tmp_path / "led")

    def test_library_default_records_nothing(self, tmp_path):
        from repro.experiments.runner import run_benchmark
        from repro.experiments.systems import make_system
        from repro.workloads import SysBenchWorkload

        workload = SysBenchWorkload(scale=0.05, n_requests=300)
        result = run_benchmark(workload,
                               make_system("icash", workload),
                               ledger=NULL_LEDGER)
        assert result.n_requests == 300
        assert NULL_LEDGER.recorded == 0
        assert not (tmp_path / ".repro-ledger").exists()


# ---------------------------------------------------------------------------
# Every entry point records
# ---------------------------------------------------------------------------


class TestEntryPoints:
    def test_run_benchmark_hook(self, tmp_path):
        from repro.experiments.runner import run_benchmark
        from repro.experiments.systems import make_system
        from repro.workloads import SysBenchWorkload

        store = _writer(tmp_path)
        workload = SysBenchWorkload(scale=0.05, n_requests=300)
        run_benchmark(workload, make_system("icash", workload),
                      ledger=store)
        (row,) = store.rows()
        assert row.command == "run_benchmark"
        assert row.spec["seed"] == workload.seed
        assert store.recorded == 1

    def test_bench_suite_embeds_run_ids(self, tmp_path):
        from repro.experiments import bench

        store = _writer(tmp_path)
        document = bench.run_suite(quick=True, ledger=store)
        rows = store.rows()
        assert len(rows) == len(document["cases"]) == 2
        for case, row in zip(document["cases"], rows):
            assert case["ledger_run_id"] == row.run_id
            assert row.command == "bench"
            assert row.extra["case"] == case["case"]
            assert row.extra["suite"] == "quick"
        # No dangling links: every embedded id resolves in the store.
        for case in document["cases"]:
            assert store.get(case["ledger_run_id"]).command == "bench"

    def test_bench_suite_without_ledger_links_null(self):
        from repro.experiments import bench

        document = bench.run_suite(quick=True)
        assert all(case["ledger_run_id"] is None
                   for case in document["cases"])

    def test_bench_seed_override_reaches_spec_and_ledger(self,
                                                         monkeypatch,
                                                         tmp_path):
        # Patch the fan-out so the seed plumbing is testable without
        # paying for two more full suite runs.
        from repro.experiments import bench, parallel

        captured = {}

        def fake_run_specs(specs, jobs=1, progress=None):
            captured["specs"] = specs
            return [parallel.SpecOutcome(result=_small_result(),
                                         host_wall_s=0.0)
                    for _ in specs]

        monkeypatch.setattr(parallel, "run_specs", fake_run_specs)
        store = _writer(tmp_path)
        document = bench.run_suite(quick=True, ledger=store, seed=777)
        assert [spec.seed for spec in captured["specs"]] == [777, 777]
        assert [case["seed"] for case in document["cases"]] == [777, 777]
        assert all(row.spec["seed"] == 777 for row in store.rows())

    def test_sweep_records_each_point(self, tmp_path):
        from repro.experiments.sweeps import sweep_config
        from repro.workloads import SysBenchWorkload

        store = _writer(tmp_path)
        sweep_config(lambda: SysBenchWorkload(scale=0.05, n_requests=300),
                     "scan_interval", [200, 800], ledger=store)
        rows = store.rows()
        assert [row.extra["value"] for row in rows] == [200, 800]
        assert all(row.command == "sweep" for row in rows)
        assert rows[0].spec["config_overrides"] \
            == [["scan_interval", 200]]

    def test_loadtest_records_probe(self, tmp_path):
        from repro.experiments import loadtest
        from repro.workloads import SysBenchWorkload

        store = _writer(tmp_path)
        loadtest.run_rate_point(
            lambda: SysBenchWorkload(scale=0.05, n_requests=300),
            "icash", 500.0, seed=99, ledger=store)
        (row,) = store.rows()
        assert row.command == "loadtest"
        assert row.extra == {"role": "probe", "offered_rps": 500.0}
        assert row.spec["load"] == ["open", 500.0, "poisson", 99]
        assert row.spec["seed"] == 99

    def test_chaos_records_verdict_context(self, tmp_path):
        from repro.experiments import chaos

        store = _writer(tmp_path)
        scenario = chaos.quick_scenarios()[0]
        verdict = chaos.run_scenario(scenario, n_requests=300,
                                     ledger=store)
        (row,) = store.rows()
        assert row.command == "chaos"
        assert row.extra["scenario"] == scenario.scenario_id
        assert row.extra["fault_kind"] == scenario.fault_kind
        assert row.extra["passed"] == verdict.passed
        assert row.metrics["faults"], "fault outcomes missing"

    def test_record_figure_walks_every_system(self, tmp_path):
        from repro.experiments.figures import record_figure

        store = _writer(tmp_path)
        fake = SimpleNamespace(
            figure="figure6a", metric="tx/s",
            runs={"icash": _small_result(), "lru": _small_result(seed=7)})
        assert record_figure(store, fake) == 2
        rows = store.rows()
        assert [row.extra["system"] for row in rows] == ["icash", "lru"]
        assert all(row.command == "figure" and
                   row.extra["figure"] == "figure6a" for row in rows)
        assert record_figure(NULL_LEDGER, fake) == 0
        assert record_figure(None, fake) == 0


# ---------------------------------------------------------------------------
# Diff + provenance hints
# ---------------------------------------------------------------------------


class TestDiff:
    def test_seed_change_yields_deltas_and_seed_hint(self, tmp_path):
        store = _writer(tmp_path)
        store.record(_small_result(), command="bench",
                     spec={"seed": 2011})
        store.record(_small_result(seed=7), command="bench",
                     spec={"seed": 7})
        diff = store.diff("1", "2")
        assert diff.deltas, "different seeds must shift some metric"
        assert any("seed differs" in hint for hint in diff.hints)
        rendered = diff.render()
        assert "why might these differ?" in rendered
        # Sorted most-moved first.
        rels = [abs(d.rel) for d in diff.deltas if d.rel is not None]
        assert rels == sorted(rels, reverse=True)

    def test_identical_rows_fall_back_to_determinism_hint(self, tmp_path,
                                                          monkeypatch):
        # Pin provenance to a clean tree; otherwise the dirty-tree
        # hint (correctly) pre-empts the fallback while developing.
        monkeypatch.setattr(ledger_module, "_GIT_CACHE",
                            ("deadbeef", False))
        store = _writer(tmp_path)
        store.record(_small_result(), command="run", spec={"seed": 2011})
        store.record(_small_result(), command="run", spec={"seed": 2011})
        diff = store.diff("1", "2")
        assert diff.deltas == []
        assert diff.unchanged == len(flatten_metrics(
            store.get("1").metrics))
        assert any("same recipe" in hint for hint in diff.hints)

    def test_config_override_hint(self, tmp_path):
        store = _writer(tmp_path)
        store.record(_small_result(), command="sweep",
                     spec={"seed": 2011, "config_overrides": []})
        store.record(_small_result(delta_accept=64), command="sweep",
                     spec={"seed": 2011,
                           "config_overrides": [["delta_accept_bytes",
                                                 64]]})
        diff = store.diff("1", "2")
        assert any("config overrides differ" in hint
                   for hint in diff.hints)

    def test_engine_and_command_hints(self, tmp_path):
        store = _writer(tmp_path)
        store.record(_small_result(), command="run", spec={"seed": 2011})
        store.record(_small_result(engine="event"), command="bench",
                     spec={"seed": 2011})
        hints = diff_rows(store.get("1"), store.get("2")).hints
        assert any("engine differs" in hint for hint in hints)
        assert any("different commands" in hint for hint in hints)


# ---------------------------------------------------------------------------
# Anomaly detection + trend
# ---------------------------------------------------------------------------


class TestAnomalyDetector:
    def test_short_history_never_flags(self):
        assert detect_anomalies([100.0] * MIN_HISTORY + [999.0]) != []
        assert detect_anomalies([100.0, 999.0, 100.0]) == []

    def test_zero_spread_history_flags_any_shift(self):
        values = [100.0] * 6 + [120.0]
        (anomaly,) = detect_anomalies(values)
        assert anomaly.index == 6
        assert anomaly.value == 120.0
        assert anomaly.median == 100.0
        assert anomaly.score == float("inf")
        assert anomaly.floor == pytest.approx(5.0)  # 5% of median

    def test_below_floor_shift_is_noise(self):
        values = [100.0] * 6 + [104.0]  # inside the 5% floor
        assert detect_anomalies(values) == []

    def test_noisy_history_absorbs_proportional_shift(self):
        base = [90.0, 110.0, 95.0, 105.0, 100.0, 98.0, 102.0]
        assert detect_anomalies(base + [112.0]) == []
        assert detect_anomalies(base + [220.0]) != []

    def test_sems_raise_the_floor(self):
        values = [100.0] * 6 + [120.0]
        quiet = detect_anomalies(values, sems=[0.1] * 7)
        assert len(quiet) == 1
        # NOISE_Z (3) x sem median 10 = floor 30 > the 20 deviation.
        noisy = detect_anomalies(values, sems=[10.0] * 7)
        assert noisy == []

    def test_metric_policy_tolerance_is_used(self):
        from repro.experiments.bench import METRIC_POLICY

        metric, (_, rel_tol, _) = next(iter(METRIC_POLICY.items()))
        values = [100.0] * 6 + [100.0 * (1 + rel_tol) - 0.01]
        assert detect_anomalies(values, metric=metric) == []

    def test_window_bounds(self):
        with pytest.raises(ValueError, match="window"):
            detect_anomalies([1.0] * 10, window=MIN_HISTORY - 1)
        # A spike 9 points back falls out of an 8-wide window.
        values = [500.0] + [100.0] * DEFAULT_WINDOW + [100.0]
        assert detect_anomalies(values, window=DEFAULT_WINDOW) == []

    def test_flagged_point_does_not_poison_zero_spread_history(self):
        # One bad deploy among identical-seed reruns: later good runs
        # sit at the historical median again and must not flag.
        values = [100.0] * 5 + [150.0] + [100.0] * 3
        flagged = detect_anomalies(values)
        assert [a.index for a in flagged] == [5]

    def test_constants_are_the_documented_ones(self):
        assert ANOMALY_Z == 3.5
        assert DEFAULT_WINDOW == 8
        assert MIN_HISTORY == 3
        assert ledger_module.MAD_SCALE == 1.4826
        assert ledger_module.DEFAULT_REL_TOL == 0.05


class TestTrend:
    def test_injected_change_flags_only_the_changed_run(self, tmp_path):
        """The acceptance scenario: K identical-seed runs plus one run
        with a deliberately different configuration — the detector
        flags exactly the changed run."""
        store = _writer(tmp_path)
        for _ in range(5):
            store.record(_small_result(), command="sweep",
                         spec={"seed": 2011})
        store.record(_small_result(delta_accept=64), command="sweep",
                     spec={"seed": 2011,
                           "config_overrides": [["delta_accept_bytes",
                                                 64]]})
        metric = "counters.delta_reconstructions"
        values = [ledger_module.metric_value(row, metric)
                  for row in store.rows()]
        assert len(set(values[:5])) == 1, "identical reruns drifted"
        assert values[5] != values[0], "config change had no effect"
        report = store.trend(metric)
        assert [a.index for a in report.anomalies] == [5]
        assert report.anomalies[0].score == float("inf")
        assert "1 anomalie(s)" in report.render()

    def test_trend_filters_and_missing_metric(self, tmp_path):
        store = _writer(tmp_path)
        for seed in (2011, 2011, 2011, 7):
            store.record(_small_result(seed=seed), command="run",
                         spec={"seed": seed})
        scoped = store.trend("transactions_per_s",
                             filters={"seed": 2011})
        assert len(scoped.values) == 3
        assert "seed=2011" in scoped.render()
        empty = store.trend("no_such_metric")
        assert empty.values == []
        assert "no matching runs" in empty.render()

    def test_sparkline(self):
        assert sparkline([]) == ""
        flat = sparkline([5.0, 5.0, 5.0])
        assert len(flat) == 3 and len(set(flat)) == 1
        ramp = sparkline(list(range(8)))
        assert ramp[0] == "▁" and ramp[-1] == "█"
        assert len(sparkline(list(range(100)), width=60)) == 60


# ---------------------------------------------------------------------------
# Determinism across job counts; cross-process append safety
# ---------------------------------------------------------------------------


def _record_worker(args):
    """Top-level so ProcessPoolExecutor can pickle it by reference."""
    root, seed, n_rows = args
    store = LedgerWriter(root=root)
    for _ in range(n_rows):
        store.record(_small_result(seed=seed), command="run",
                     spec={"seed": seed})
    return store.recorded


class TestDeterminism:
    def test_canonical_export_byte_identical_across_jobs(self, tmp_path):
        from repro.experiments import bench

        exports = {}
        for jobs in (1, 2):
            store = _writer(tmp_path, f"jobs{jobs}",
                            clock=lambda: 1.5)
            bench.run_suite(quick=True, jobs=jobs, ledger=store)
            path = tmp_path / f"canon{jobs}.jsonl"
            store.export(str(path), canonical=True)
            exports[jobs] = path.read_bytes()
        assert exports[1] == exports[2]
        assert exports[1], "canonical export came out empty"
        for line in exports[1].decode().splitlines():
            assert "volatile" not in json.loads(line)

    def test_concurrent_recorders_cannot_corrupt(self, tmp_path):
        root = str(tmp_path / "shared")
        LedgerWriter(root=root)  # create the store up front
        jobs = [(root, seed, 3) for seed in (2011, 7)]
        with ProcessPoolExecutor(max_workers=2) as pool:
            recorded = list(pool.map(_record_worker, jobs))
        assert recorded == [3, 3]
        store = LedgerWriter(root=root)
        assert store.count() == 6
        assert [row.seq for row in store.rows()] == list(range(1, 7))
        assert store.verify() == []


# ---------------------------------------------------------------------------
# Maintenance: verify, export repair, prune, schema guard
# ---------------------------------------------------------------------------


class TestMaintenance:
    def _seeded(self, tmp_path, n=3):
        store = _writer(tmp_path)
        for seed in range(n):
            store.record(_small_result(seed=seed or 2011),
                         command="run", spec={"seed": seed or 2011})
        return store

    def test_verify_clean_store(self, tmp_path):
        assert self._seeded(tmp_path).verify() == []

    def test_verify_catches_export_gap_and_export_repairs(self,
                                                          tmp_path):
        store = self._seeded(tmp_path)
        with open(store.export_path, "w", encoding="utf-8") as handle:
            handle.write("")  # simulate the crash window
        issues = store.verify()
        assert any("export" in issue for issue in issues)
        store.export()
        assert store.verify() == []

    def test_verify_catches_mangled_export_line(self, tmp_path):
        store = self._seeded(tmp_path)
        with open(store.export_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = "not json\n"
        with open(store.export_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        assert any("not valid JSON" in issue
                   for issue in store.verify())

    def test_verify_catches_edited_row(self, tmp_path):
        store = self._seeded(tmp_path)
        row = store.get("2")
        doc = row.to_json()
        doc["metrics"]["scalars"]["transactions_per_s"] += 1.0
        with sqlite3.connect(store.db_path) as conn:
            conn.execute("UPDATE runs SET row_json = ? WHERE seq = 2",
                         (json.dumps(doc, sort_keys=True),))
        issues = store.verify()
        assert any("does not match content" in issue
                   for issue in issues)

    def test_prune_keeps_newest_and_rewrites_export(self, tmp_path):
        store = self._seeded(tmp_path, n=4)
        assert store.prune(keep=2) == 2
        assert [row.seq for row in store.rows()] == [3, 4]
        with open(store.export_path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 2
        assert store.verify() == []
        with pytest.raises(ValueError):
            store.prune(keep=-1)

    def test_schema_version_guard(self, tmp_path):
        store = self._seeded(tmp_path)
        with sqlite3.connect(store.db_path) as conn:
            conn.execute("UPDATE meta SET value = '99' "
                         "WHERE key = 'schema_version'")
        with pytest.raises(ValueError, match="schema 99 unsupported"):
            LedgerWriter(root=store.root)


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------


class TestCLI:
    @pytest.fixture
    def recording_env(self, monkeypatch, tmp_path):
        root = tmp_path / "led"
        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(root))
        return root

    def _run(self, capsys, argv, expect=0):
        from repro.cli import main

        assert main(argv) == expect
        return capsys.readouterr().out

    def test_cli_records_inspects_and_maintains(self, capsys, tmp_path,
                                                recording_env):
        root = str(recording_env)
        out = self._run(capsys, ["run", "sysbench", "--requests", "200"])
        assert "ledger: recorded 1 run" in out
        self._run(capsys, ["run", "sysbench", "--requests", "200"])

        out = self._run(capsys, ["ledger", "list", "--dir", root])
        assert len([line for line in out.splitlines()
                    if line.startswith("#")]) == 2

        out = self._run(capsys, ["ledger", "show", "1", "--dir", root])
        assert json.loads(out)["command"] == "run"

        out = self._run(capsys,
                        ["ledger", "diff", "1", "2", "--dir", root])
        assert "no metric differences" in out
        assert "why might these differ?" in out

        out = self._run(capsys, ["ledger", "trend",
                                 "transactions_per_s", "--dir", root])
        assert "2 run(s)" in out

        out = self._run(capsys, ["ledger", "verify", "--dir", root])
        assert out.startswith("ok:")

        export_path = tmp_path / "out.jsonl"
        out = self._run(capsys, ["ledger", "export", "--dir", root,
                                 "--canonical", "--out",
                                 str(export_path)])
        assert "2 row(s)" in out
        assert len(export_path.read_text().splitlines()) == 2

        out = self._run(capsys, ["ledger", "prune", "--keep", "1",
                                 "--dir", root])
        assert "pruned 1 row(s)" in out

    def test_no_ledger_flag_skips_recording(self, capsys, tmp_path,
                                            recording_env):
        out = self._run(capsys, ["run", "sysbench", "--requests", "200",
                                 "--no-ledger"])
        assert "ledger:" not in out
        assert not (recording_env / "ledger.db").exists()

    def test_missing_store_is_a_clear_error(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["ledger", "list", "--dir",
                     str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert "no ledger at" in err

    def test_bad_filter_is_a_clear_error(self, capsys, tmp_path,
                                         recording_env):
        self._run(capsys, ["run", "sysbench", "--requests", "200"])
        from repro.cli import main

        assert main(["ledger", "list", "--dir", str(recording_env),
                     "--filter", "figure=6a"]) == 2
        assert "unknown filter" in capsys.readouterr().err
