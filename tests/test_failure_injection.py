"""Failure-injection tests: torn log blocks, corrupted replay, and the
long-run Heatmap-aging knob."""

import numpy as np
import pytest

from repro.core import ICASHConfig, ICASHController
from repro.core.recovery import recover
from repro.delta.packer import DeltaLog, DeltaRecord
from repro.delta.encoder import Delta
from repro.devices.hdd import HardDiskDrive

from test_core_controller import family_dataset, small_config


def delta_of(nbytes: int) -> Delta:
    return Delta(runs=((0, bytes(nbytes)),))


class TestTornLogBlocks:
    def make_log(self):
        hdd = HardDiskDrive(100_000)
        return DeltaLog(hdd, base_lba=50_000, size_blocks=64)

    def test_replay_skips_torn_block(self):
        log = self.make_log()
        _, slots_a, _ = log.append([DeltaRecord(1, 0, delta_of(3000))])
        _, slots_b, _ = log.append([DeltaRecord(2, 0, delta_of(3000))])
        log.corrupt_block(slots_a[0])
        survivors = [r.lba for r in log.replay()]
        assert survivors == [2]
        assert log.corrupt_blocks_skipped == 1

    def test_replay_with_all_blocks_torn(self):
        log = self.make_log()
        _, slots, _ = log.append([DeltaRecord(1, 0, delta_of(100))])
        log.corrupt_block(slots[0])
        assert list(log.replay()) == []
        assert log.corrupt_blocks_skipped == 1

    def test_corrupting_missing_slot_rejected(self):
        with pytest.raises(KeyError):
            self.make_log().corrupt_block(9)

    def test_wrap_over_torn_block_does_not_crash(self):
        hdd = HardDiskDrive(100_000)
        log = DeltaLog(hdd, base_lba=50_000, size_blocks=2)
        _, slots, _ = log.append([DeltaRecord(0, 0, delta_of(3000))])
        log.corrupt_block(slots[0])
        log.append([DeltaRecord(1, 0, delta_of(3000))])
        # Third append wraps onto the torn slot: must not raise.
        log.append([DeltaRecord(2, 0, delta_of(3000))])


class TestRecoveryUnderCorruption:
    def test_torn_block_degrades_to_older_state(self):
        """A torn delta block loses only its own deltas; every other
        block still recovers, and the lost ones fall back to durable
        (pre-write) content — never garbage."""
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        pristine = recover(controller)
        baseline = {lba: pristine.read(lba) for lba in range(256)}

        gen = np.random.default_rng(5)
        written = {}
        lbas = list(controller.delta_map_snapshot())[:30]
        for lba in lbas:
            content = baseline[lba].copy()
            content[0:40] = gen.integers(0, 256, 40)
            controller.write(lba, [content])
            written[lba] = content
        controller.flush()
        # Tear the most recently appended log block.
        victim_slot = (controller.log._next - 1) % controller.log.size_blocks
        controller.log.corrupt_block(victim_slot)

        image = recover(controller)
        assert image.corrupt_blocks_skipped >= 1
        for lba in range(256):
            recovered = image.read(lba)
            if lba in written:
                ok = (np.array_equal(recovered, written[lba])
                      or np.array_equal(recovered, baseline[lba]))
                assert ok, f"block {lba} recovered to garbage"
            else:
                assert np.array_equal(recovered, baseline[lba])


class TestHeatmapAging:
    def test_decay_interval_validated(self):
        with pytest.raises(ValueError):
            ICASHConfig(heatmap_decay_interval=-1)
        with pytest.raises(ValueError):
            ICASHConfig(heatmap_decay_factor=2.0)

    def test_controller_ages_heatmap(self):
        dataset = family_dataset()
        controller = ICASHController(
            dataset, small_config(heatmap_decay_interval=50,
                                  heatmap_decay_factor=0.0))
        for _ in range(3):
            for lba in range(50):
                controller.read(lba)
        # With factor 0, counters zero out at every decay boundary, so
        # totals stay far below one-per-access.
        sigs = controller.cache.get(0, touch=False).signatures
        assert controller.heatmap.popularity(sigs) < 150

    def test_disabled_by_default(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        for lba in range(100):
            controller.read(lba)
        assert controller.heatmap.total_accesses == 100
