"""Tests for the multi-element I-CASH array."""

import numpy as np
import pytest

from repro.core import ICASHConfig
from repro.core.array import ICASHArray
from repro.sim.request import BLOCK_SIZE

from test_core_controller import family_dataset, small_config


def make_array(n_elements: int = 2, n_blocks: int = 256,
               chunk_blocks: int = 16) -> ICASHArray:
    return ICASHArray(family_dataset(n_blocks), n_elements=n_elements,
                      chunk_blocks=chunk_blocks, config=small_config())


class TestAddressing:
    def test_locate_round_robins_chunks(self):
        array = make_array(n_elements=2, chunk_blocks=16)
        assert array._locate(0) == (0, 0)
        assert array._locate(16) == (1, 0)
        assert array._locate(32) == (0, 16)
        assert array._locate(17) == (1, 1)

    def test_split_covers_span_once(self):
        array = make_array(n_elements=3, chunk_blocks=8)
        per_element = array._split(5, 50)
        covered = sorted(
            offset + i
            for extents in per_element.values()
            for local, take, offset in extents
            for i in range(take))
        assert covered == list(range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_array(n_elements=0)
        with pytest.raises(ValueError):
            ICASHArray(family_dataset(64), chunk_blocks=0)


class TestContentCorrectness:
    def test_roundtrip_over_all_elements(self, rng):
        dataset = family_dataset(256)
        array = ICASHArray(dataset.copy(), n_elements=4, chunk_blocks=8,
                           config=small_config())
        array.ingest()
        shadow = dataset.copy()
        for _ in range(600):
            lba = int(rng.integers(0, 256))
            if rng.random() < 0.4:
                content = shadow[lba].copy()
                content[0:64] = rng.integers(0, 256, 64)
                shadow[lba] = content
                array.write(lba, [content])
            else:
                _, (out,) = array.read(lba)
                assert np.array_equal(out, shadow[lba])

    def test_spanning_requests_cross_elements(self):
        dataset = family_dataset(128)
        array = ICASHArray(dataset.copy(), n_elements=2, chunk_blocks=4,
                           config=small_config())
        # A 12-block read at offset 2 crosses several chunks/elements.
        _, contents = array.read(2, 12)
        for offset, content in enumerate(contents):
            assert np.array_equal(content, dataset[2 + offset])

    def test_spanning_write(self, rng):
        dataset = family_dataset(128)
        array = ICASHArray(dataset.copy(), n_elements=2, chunk_blocks=4,
                           config=small_config())
        payload = [rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
                   for _ in range(10)]
        array.write(3, payload)
        _, contents = array.read(3, 10)
        for written, out in zip(payload, contents):
            assert np.array_equal(out, written)


class TestParallelism:
    def test_spanning_request_latency_is_slowest_element(self):
        array = make_array(n_elements=4, chunk_blocks=4)
        latency, _ = array.read(0, 16)  # 4 blocks per element
        element_latency, _ = make_array(
            n_elements=1, chunk_blocks=4).read(0, 16)
        # Four elements in parallel beat one element doing everything.
        assert latency < element_latency

    def test_each_element_is_independent(self):
        array = make_array(n_elements=2, chunk_blocks=16)
        array.ingest()
        counts = [len(e.cache.references()) for e in array.elements]
        assert all(c >= 1 for c in counts)


class TestAggregation:
    def test_devices_span_elements(self):
        array = make_array(n_elements=3)
        names = [d.name for d in array.devices()]
        assert names.count("ssd") == 3
        assert names.count("hdd") == 3

    def test_cpu_and_background_aggregate(self):
        array = make_array(n_elements=2)
        array.ingest()
        assert array.cpu_time == pytest.approx(
            sum(e.cpu_time for e in array.elements))
        assert array.background_time == pytest.approx(
            sum(e.background_time for e in array.elements))

    def test_block_kind_counts_aggregate(self):
        array = make_array(n_elements=2)
        array.ingest()
        counts = array.block_kind_counts()
        assert sum(counts.values()) >= 200

    def test_flush_hits_all_elements(self, rng):
        array = make_array(n_elements=2)
        array.ingest()
        for lba in (0, 20):  # one block on each element
            content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            array.write(lba, [content])
        array.flush()
        for element in array.elements:
            assert not element._dirty_delta_lbas
