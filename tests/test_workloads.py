"""Tests for the six benchmark generators, content model and multi-VM
composition."""

import numpy as np
import pytest

from repro.core.signatures import block_signatures, signature_overlap
from repro.delta.encoder import encode_delta
from repro.sim.request import BLOCK_SIZE, OpType
from repro.workloads import (ALL_WORKLOADS, HadoopWorkload,
                             LoadSimWorkload, MultiVMWorkload,
                             RUBiSWorkload, SpecSFSWorkload,
                             SysBenchWorkload, TPCCWorkload)
from repro.workloads.content import ContentModel


class TestContentModel:
    def make(self, **overrides):
        defaults = dict(n_blocks=256, n_families=8, mutation_fraction=0.1,
                        duplicate_fraction=0.1, content_seed=5)
        defaults.update(overrides)
        return ContentModel(**defaults)

    def test_dataset_shape_and_determinism(self):
        model = self.make()
        a = model.build_dataset()
        b = self.make().build_dataset()
        assert a.shape == (256, BLOCK_SIZE)
        assert np.array_equal(a, b)

    def test_family_members_are_similar(self):
        model = self.make()
        dataset = model.build_dataset()
        fam = model.family_of
        members = np.flatnonzero(fam == fam[0])
        if len(members) < 2:
            pytest.skip("family too small for this seed")
        a, b = dataset[members[0]], dataset[members[1]]
        delta = encode_delta(a, b)
        assert delta.size_bytes < BLOCK_SIZE // 4
        overlap = signature_overlap(block_signatures(a),
                                    block_signatures(b))
        assert overlap >= 4

    def test_duplicates_exist(self):
        model = self.make(duplicate_fraction=0.5)
        dataset = model.build_dataset()
        fam = model.family_of
        exact = sum(
            1 for lba in range(256)
            if np.array_equal(dataset[lba], model.duplicate_of(lba)))
        assert exact > 0

    def test_mutation_changes_bounded_fraction(self, rng):
        model = self.make(mutation_fraction=0.1)
        block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        mutated = model.mutate(block, rng, lba=3)
        changed = int((mutated != block).sum())
        assert 0 < changed <= int(BLOCK_SIZE * 0.1) + 8

    def test_repeated_mutations_stay_anchored(self, rng):
        """Anchored updates keep a block's drift from its original
        bounded — the property that keeps deltas small over time."""
        model = self.make(mutation_fraction=0.08)
        original = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        current = original
        for _ in range(20):
            current = model.mutate(current, rng, lba=7)
        delta = encode_delta(current, original)
        # Without anchoring, 20 x 8% writes would touch ~80% of the block.
        assert delta.changed_bytes < BLOCK_SIZE // 2

    def test_rewrite_is_family_similar(self, rng):
        model = self.make()
        fresh = model.rewrite(5, rng)
        base = model.duplicate_of(5)
        assert encode_delta(fresh, base).size_bytes < BLOCK_SIZE // 8

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(n_families=0)
        with pytest.raises(ValueError):
            self.make(mutation_fraction=1.5)
        with pytest.raises(ValueError):
            self.make(duplicate_fraction=-0.1)


class TestGeneratorContract:
    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_stream_is_deterministic_and_restartable(self, workload_cls):
        workload = workload_cls(scale=0.05, n_requests=120)
        first = [(r.op, r.lba, r.nblocks) for r in workload.requests()]
        second = [(r.op, r.lba, r.nblocks) for r in workload.requests()]
        assert first == second

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_shadow_tracks_writes(self, workload_cls):
        workload = workload_cls(scale=0.05, n_requests=150)
        for request in workload.requests():
            if request.is_write:
                for offset, block in enumerate(request.payload):
                    assert np.array_equal(
                        workload.shadow[request.lba + offset], block)

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_requests_stay_in_bounds(self, workload_cls):
        workload = workload_cls(scale=0.05, n_requests=200)
        for request in workload.requests():
            assert 0 <= request.lba
            assert request.lba + request.nblocks <= workload.n_blocks

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_ssd_budget_is_a_tenth(self, workload_cls):
        workload = workload_cls(n_requests=10)
        assert workload.ssd_budget_blocks \
            == max(64, workload.n_blocks // 10)

    def test_different_seeds_differ(self):
        a = SysBenchWorkload(scale=0.05, n_requests=100, seed=1)
        b = SysBenchWorkload(scale=0.05, n_requests=100, seed=2)
        sa = [(r.op, r.lba) for r in a.requests()]
        sb = [(r.op, r.lba) for r in b.requests()]
        assert sa != sb


class TestTable4Profiles:
    """Measured streams must match the paper's Table 4 characteristics:
    read/write mix and request sizes (within sampling tolerance)."""

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_read_fraction_matches_paper(self, workload_cls):
        workload = workload_cls(scale=0.1, n_requests=2500)
        measured = workload.measured_profile()
        assert measured.read_fraction == pytest.approx(
            workload_cls.paper_profile.read_fraction, abs=0.05)

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_request_sizes_roughly_match_paper(self, workload_cls):
        workload = workload_cls(scale=0.1, n_requests=2500)
        measured = workload.measured_profile()
        paper = workload_cls.paper_profile
        if measured.n_reads > 100:
            assert measured.avg_read_bytes == pytest.approx(
                paper.avg_read_bytes, rel=0.5)
        if measured.n_writes > 100:
            # Write sizes are clamped at max_request_blocks, so very
            # large paper means (Hadoop's 99 KB) shrink; allow headroom.
            assert measured.avg_write_bytes == pytest.approx(
                paper.avg_write_bytes, rel=0.6)

    def test_specsfs_is_write_dominated(self):
        profile = SpecSFSWorkload(scale=0.1, n_requests=1500)\
            .measured_profile()
        assert profile.read_fraction < 0.2

    def test_rubis_is_read_dominated(self):
        profile = RUBiSWorkload(scale=0.1, n_requests=1500)\
            .measured_profile()
        assert profile.read_fraction > 0.95

    def test_profile_row_renders(self):
        profile = SysBenchWorkload.paper_profile
        row = profile.format_row()
        assert "SysBench" in row and "reads=" in row


class TestAddressPatterns:
    def test_zipf_concentrates_accesses(self):
        workload = SysBenchWorkload(scale=0.5, n_requests=3000)
        counts = {}
        for request in workload.requests():
            counts[request.lba] = counts.get(request.lba, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # The top 10% of touched blocks absorb the majority of accesses.
        cut = max(1, len(top) // 10)
        assert sum(top[:cut]) > 0.5 * sum(top)

    def test_loadsim_is_nearly_uniform(self):
        workload = LoadSimWorkload(scale=0.25, n_requests=3000)
        counts = {}
        for request in workload.requests():
            counts[request.lba] = counts.get(request.lba, 0) + 1
        top = sorted(counts.values(), reverse=True)
        cut = max(1, len(top) // 10)
        assert sum(top[:cut]) < 0.45 * sum(top)

    def test_hadoop_is_sequential_heavy(self):
        workload = HadoopWorkload(scale=0.25, n_requests=2000)
        sequential = 0
        last_end = None
        for request in workload.requests():
            if last_end is not None and request.lba == last_end:
                sequential += 1
            last_end = request.lba + request.nblocks
        assert sequential > 400


class TestMultiVM:
    def test_images_are_near_clones(self):
        multivm = MultiVMWorkload(TPCCWorkload, n_vms=3, scale=0.1,
                                  n_requests_per_vm=50)
        assert multivm.cross_vm_similarity() > 0.9

    def test_divergence_grows_with_vm_index(self):
        multivm = MultiVMWorkload(TPCCWorkload, n_vms=5, scale=0.1,
                                  n_requests_per_vm=50)
        golden = multivm.vms[0].build_dataset()
        identical = []
        for vm in multivm.vms[1:]:
            image = vm.build_dataset()
            identical.append(int((image == golden).all(axis=1).sum()))
        assert identical[0] >= identical[-1]

    def test_requests_translate_to_private_regions(self):
        multivm = MultiVMWorkload(RUBiSWorkload, n_vms=3, scale=0.1,
                                  n_requests_per_vm=100)
        for request in multivm.requests():
            region = request.lba // multivm.vm_blocks
            end_region = (request.lba + request.nblocks - 1) \
                // multivm.vm_blocks
            assert region == end_region == request.vm_id

    def test_round_robin_interleaving(self):
        multivm = MultiVMWorkload(TPCCWorkload, n_vms=3, scale=0.1,
                                  n_requests_per_vm=10)
        vm_ids = [r.vm_id for r in multivm.requests()]
        assert vm_ids[:3] == [0, 1, 2]
        assert len(vm_ids) == 30

    def test_shadow_concatenates_vm_spaces(self):
        multivm = MultiVMWorkload(TPCCWorkload, n_vms=2, scale=0.1,
                                  n_requests_per_vm=10)
        assert multivm.shadow.shape[0] == multivm.n_blocks

    def test_compute_overlap_scales_app_time(self):
        single = TPCCWorkload(scale=0.1, n_requests=10)
        multivm = MultiVMWorkload(TPCCWorkload, n_vms=5, scale=0.1,
                                  n_requests_per_vm=10)
        assert multivm.app_compute_per_tx == pytest.approx(
            single.app_compute_per_tx / 5)

    def test_needs_at_least_one_vm(self):
        with pytest.raises(ValueError):
            MultiVMWorkload(TPCCWorkload, n_vms=0)
