"""Property-based tests on cross-module invariants.

These complement the unit suites with randomized adversarial sequences:
the FTL never loses a mapping, the controller never serves wrong bytes,
the segment pool never leaks, the heatmap stays consistent.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ICASHConfig, ICASHController
from repro.core.heatmap import Heatmap
from repro.devices.ssd import FlashSSD, SSDSpec
from repro.sim.request import BLOCK_SIZE


# ----------------------------------------------------------------------
# FTL invariants under arbitrary write/trim sequences
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.sampled_from(["write", "trim"]),
                          st.integers(0, 63)),
                max_size=400))
def test_ftl_mapping_matches_live_set(ops):
    """After any op sequence the FTL maps exactly the live lbas, and the
    number of valid pages equals the number of live lbas."""
    ssd = FlashSSD(64, SSDSpec(pages_per_block=8, overprovision=0.2))
    live = set()
    for op, lba in ops:
        if op == "write":
            ssd.write(lba, 1)
            live.add(lba)
        else:
            ssd.trim(lba, 1)
            live.discard(lba)
    assert set(ssd._map) == live
    assert sum(b.valid_count for b in ssd._blocks) == len(live)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(200, 800))
def test_ftl_survives_write_storms(seed, n_ops):
    """Heavy random overwrites never wedge the device or lose blocks."""
    gen = np.random.default_rng(seed)
    ssd = FlashSSD(64, SSDSpec(pages_per_block=8, overprovision=0.2))
    for _ in range(n_ops):
        ssd.write(int(gen.integers(0, 64)), 1)
    assert len(ssd._map) <= 64
    assert ssd.write_amplification >= 1.0
    # Every mapped page location is unique.
    locations = list(ssd._map.values())
    assert len(locations) == len(set(locations))


# ----------------------------------------------------------------------
# Controller: arbitrary op sequences never corrupt content
# ----------------------------------------------------------------------

def _tiny_controller(dataset: np.ndarray) -> ICASHController:
    return ICASHController(dataset, ICASHConfig(
        ssd_capacity_blocks=64,
        data_ram_bytes=8 * BLOCK_SIZE,
        delta_ram_bytes=16 * 1024,
        max_virtual_blocks=128,
        log_blocks=256,
        scan_interval=37,
        scan_window=64,
        flush_interval=53,
        flush_dirty_count=16))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1),
       st.lists(st.tuples(st.booleans(), st.integers(0, 63),
                          st.integers(0, 3)),
                min_size=10, max_size=250))
def test_controller_model_equivalence(seed, ops):
    """The controller behaves exactly like a plain array of blocks, no
    matter how its internal representations shuffle."""
    gen = np.random.default_rng(seed)
    dataset = gen.integers(0, 256, (64, BLOCK_SIZE), dtype=np.uint8)
    # Inject family structure so delta paths actually trigger.
    dataset[1::4] = dataset[0]
    dataset[2::4] = dataset[0]
    controller = _tiny_controller(dataset.copy())
    shadow = dataset.copy()
    for is_write, lba, style in ops:
        if is_write:
            content = shadow[lba].copy()
            if style == 0:      # small anchored change
                content[0:16] = gen.integers(0, 256, 16)
            elif style == 1:    # medium patch
                content[100:600] = gen.integers(0, 256, 500)
            elif style == 2:    # full rewrite (spill material)
                content = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            else:               # rewrite back to a sibling's content
                content = shadow[(lba + 4) % 64].copy()
            shadow[lba] = content
            controller.write(lba, [content])
        else:
            _, (out,) = controller.read(lba)
            assert np.array_equal(out, shadow[lba])
    # Final sweep: every block still reads back correctly.
    for lba in range(64):
        _, (out,) = controller.read(lba)
        assert np.array_equal(out, shadow[lba])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1))
def test_controller_segment_pool_never_leaks(seed):
    """Segments used always equals the sum over cached delta holders."""
    gen = np.random.default_rng(seed)
    dataset = gen.integers(0, 256, (64, BLOCK_SIZE), dtype=np.uint8)
    dataset[1::2] = dataset[0]
    controller = _tiny_controller(dataset.copy())
    controller.ingest()
    for _ in range(150):
        lba = int(gen.integers(0, 64))
        if gen.random() < 0.5:
            content = dataset[lba].copy()
            content[0:64] = gen.integers(0, 256, 64)
            controller.write(lba, [content])
        else:
            controller.read(lba)
    expected = sum(
        controller.segments.segments_for(vb.delta_segments_bytes)
        for vb in controller.cache.lru_order() if vb.delta_segments_bytes)
    assert controller.segments.used_segments == expected


# ----------------------------------------------------------------------
# Heatmap
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(0, 255), min_size=8, max_size=8),
                max_size=60))
def test_heatmap_popularity_decomposes(sig_lists):
    """popularity(sigs) always equals the sum of per-row counters."""
    heatmap = Heatmap()
    for sigs in sig_lists:
        heatmap.record(sigs)
    for sigs in sig_lists:
        manual = sum(heatmap.row(i)[value]
                     for i, value in enumerate(sigs))
        assert heatmap.popularity(sigs) == manual


# ----------------------------------------------------------------------
# Cache budget invariants under arbitrary attach/drop sequences
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["data", "delta", "drop_data",
                                           "drop_delta", "remove"]),
                          st.integers(0, 15)),
                max_size=120))
def test_cache_budgets_consistent(ops):
    from repro.core.cache import ICashCache
    from repro.core.virtual_block import VirtualBlock
    from repro.delta.encoder import Delta
    from repro.delta.segments import SegmentPool

    cache = ICashCache(max_virtual_blocks=32,
                       data_ram_bytes=16 * BLOCK_SIZE,
                       segment_pool=SegmentPool(1 << 16))
    block = np.zeros(BLOCK_SIZE, dtype=np.uint8)
    for op, lba in ops:
        vb = cache.get(lba, touch=False)
        if op == "remove":
            if vb is not None:
                cache.remove(lba)
            continue
        if vb is None:
            vb = VirtualBlock(lba=lba)
            cache.insert(vb)
        if op == "data" and cache.data_blocks_free > 0 or \
                (op == "data" and vb.has_data):
            cache.attach_data(vb, block)
        elif op == "delta":
            cache.attach_delta(vb, Delta(runs=((0, b"x" * 40),)))
        elif op == "drop_data":
            cache.drop_data(vb)
        elif op == "drop_delta":
            cache.drop_delta(vb)
    data_holders = sum(1 for vb in cache.lru_order() if vb.has_data)
    delta_bytes = sum(vb.delta_segments_bytes
                      for vb in cache.lru_order())
    assert cache.data_blocks_used == data_holders
    assert cache.segments.used_segments == sum(
        cache.segments.segments_for(vb.delta_segments_bytes)
        for vb in cache.lru_order() if vb.delta_segments_bytes)
    assert delta_bytes >= 0
