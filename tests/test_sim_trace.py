"""Tests for the per-request tracing layer (`repro.sim.trace`).

Covers the ring buffer, timeline ordering, both exporters' round-trips,
the controller integration (a delta-mapped read emits the paper's
SSD-read + delta-decode pair), the exactness invariant (a request's
child spans sum to its latency, so breakdowns reproduce the stats
means), and the schema/documentation parity check.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

import numpy as np
import pytest

from repro.core import BlockKind, ICASHConfig, ICASHController
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.request import BLOCK_SIZE, IORequest, OpType
from repro.sim.trace import (EVENT_TYPES, NULL_TRACER, TRACK_BACKGROUND,
                             TRACK_REQUEST, NullTracer, RingBufferTracer,
                             TraceEvent, export_chrome_trace, export_jsonl,
                             load_chrome_trace, phase_breakdown, read_jsonl)
from repro.workloads import SysBenchWorkload

from conftest import make_dataset

DOCS = Path(__file__).resolve().parents[1] / "docs" / "OBSERVABILITY.md"


def small_config(**overrides) -> ICASHConfig:
    defaults = dict(
        ssd_capacity_blocks=64,
        data_ram_bytes=32 * BLOCK_SIZE,
        delta_ram_bytes=64 * 1024,
        max_virtual_blocks=512,
        log_blocks=512,
        scan_interval=100,
        scan_window=256,
        flush_interval=128,
    )
    defaults.update(overrides)
    return ICASHConfig(**defaults)


def family_dataset(n_blocks: int = 256, n_families: int = 8,
                   seed: int = 3) -> np.ndarray:
    gen = np.random.default_rng(seed)
    bases = gen.integers(0, 256, (n_families, BLOCK_SIZE), dtype=np.uint8)
    dataset = bases[gen.integers(0, n_families, n_blocks)].copy()
    for lba in range(n_blocks):
        idx = gen.integers(0, BLOCK_SIZE, 16)
        dataset[lba, idx] = gen.integers(0, 256, 16)
    return dataset


def traced_benchmark(n_requests: int = 600):
    """One small SysBench run on I-CASH under a recording tracer."""
    workload = SysBenchWorkload(n_requests=n_requests)
    system = make_system("icash", workload)
    tracer = RingBufferTracer()
    result = run_benchmark(workload, system, tracer=tracer)
    return tracer, system, result


class TestNullTracer:
    def test_disabled_and_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.begin_request("read", 0, 1)
        tracer.span("ssd_read", 1e-4)
        tracer.instant("cache_lookup")
        tracer.mark("gc", 1e-3)
        tracer.device_span("ssd", "read", 1e-4)
        tracer.begin_background("flush")
        tracer.end_background()
        tracer.push_name_scope("hdd_log_append")
        tracer.pop_name_scope()
        tracer.end_request(1e-4)

    def test_default_emits_nothing(self):
        controller = ICASHController(make_dataset(64), small_config())
        assert controller.tracer is NULL_TRACER
        controller.write(3, [np.full(BLOCK_SIZE, 0xAB, dtype=np.uint8)])
        controller.read(3)
        # No recording tracer anywhere: the shared null sink has no
        # buffer at all, so there is nothing to have been written to.
        assert not hasattr(NULL_TRACER, "events")


class TestRingBuffer:
    def test_eviction_keeps_newest_and_counts_dropped(self):
        tracer = RingBufferTracer(capacity_events=4)
        for i in range(10):
            tracer.span("ssd_read", 1e-6, lba=i)
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        assert [e.lba for e in tracer.events] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferTracer(capacity_events=0)

    def test_unbounded_keeps_everything(self):
        tracer = RingBufferTracer(capacity_events=None)
        for _i in range(1000):
            tracer.span("ssd_read", 1e-6)
        assert len(tracer.events) == 1000
        assert tracer.dropped == 0

    def test_unknown_event_names_rejected(self):
        tracer = RingBufferTracer()
        with pytest.raises(ValueError):
            tracer.span("made_up_event", 1e-6)
        with pytest.raises(ValueError):
            tracer.mark("made_up_event", 1e-6)
        with pytest.raises(ValueError):
            tracer.push_name_scope("made_up_event")

    def test_request_nesting_guarded(self):
        tracer = RingBufferTracer()
        with pytest.raises(RuntimeError):
            tracer.end_request(1e-6)
        tracer.begin_request("read", 0, 1)
        with pytest.raises(RuntimeError):
            tracer.begin_request("read", 1, 1)
        tracer.end_request(1e-6)
        with pytest.raises(RuntimeError):
            tracer.end_background()


class TestTimeline:
    def test_request_spans_tile_monotonically(self):
        tracer, _, _ = traced_benchmark()
        requests = [e for e in tracer.events
                    if e.name == "request_start"]
        assert len(requests) > 100
        requests.sort(key=lambda e: e.ts)
        for prev, nxt in zip(requests, requests[1:]):
            # Monotonic, non-overlapping: each request starts at or
            # after the previous one ended on the busy-time timeline.
            assert nxt.ts >= prev.ts + prev.dur - 1e-12

    def test_children_stay_inside_their_request(self):
        tracer, _, _ = traced_benchmark()
        bounds = {e.req: (e.ts, e.ts + e.dur) for e in tracer.events
                  if e.name == "request_start"}
        for event in tracer.events:
            if event.track != TRACK_REQUEST \
                    or event.name == "request_start":
                continue
            start, end = bounds[event.req]
            assert event.ts >= start - 1e-12
            assert event.ts + event.dur <= end + 1e-12

    def test_background_track_stays_off_request_timeline(self):
        tracer, _, _ = traced_benchmark()
        bg = [e for e in tracer.events if e.track == TRACK_BACKGROUND]
        assert bg, "an I-CASH run flushes and scans in the background"
        names = {e.name for e in bg}
        assert names & {"flush", "scan"}


class TestExactness:
    """Every second of request latency is covered by a child span."""

    def test_child_spans_sum_to_request_latency(self):
        tracer, _, _ = traced_benchmark()
        totals: dict = {}
        for event in tracer.events:
            if event.track != TRACK_REQUEST \
                    or event.name == "request_start":
                continue
            totals[event.req] = totals.get(event.req, 0.0) + event.dur
        checked = 0
        for event in tracer.events:
            if event.name != "request_start":
                continue
            covered = totals.get(event.req, 0.0)
            assert covered == pytest.approx(event.dur, rel=1e-9, abs=1e-12)
            checked += 1
        assert checked > 100

    def test_breakdown_means_match_stats(self):
        tracer, system, _ = traced_benchmark()
        assert tracer.dropped == 0
        for op in ("read", "write"):
            breakdown = phase_breakdown(tracer.events, op=op)
            stats = system.stats.latency(op)
            assert breakdown.n_requests == stats.count
            assert breakdown.mean_us == pytest.approx(stats.mean_us,
                                                      rel=1e-9)
            phase_sum = sum(breakdown.phases.values()) + breakdown.other_s
            assert phase_sum == pytest.approx(breakdown.total_s, rel=1e-9)
            assert breakdown.other_s == pytest.approx(0.0, abs=1e-12)
            assert op in breakdown.render()


class TestControllerIntegration:
    def test_delta_mapped_read_emits_ssd_read_and_decode(self):
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        snapshot = controller.delta_map_snapshot()
        assert snapshot, "family dataset must produce delta mappings"
        lba = min(lba for lba, (ref, _slot) in snapshot.items()
                  if ref != lba)
        tracer = RingBufferTracer()
        controller.set_tracer(tracer)
        latency, (content,) = controller.process_read(
            IORequest(op=OpType.READ, lba=lba))
        assert np.array_equal(content, controller.backing.get(lba))
        names = [e.name for e in tracer.events]
        assert "request_start" in names
        assert "ssd_read" in names
        assert "delta_decode" in names
        lookups = [e for e in tracer.events if e.name == "cache_lookup"]
        assert lookups and lookups[0].lba == lba
        children = sum(e.dur for e in tracer.events
                       if e.track == TRACK_REQUEST
                       and e.name != "request_start")
        assert children == pytest.approx(latency, rel=1e-9)

    def test_log_resident_delta_read_emits_hdd_log_read(self):
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        snapshot = controller.delta_map_snapshot()
        lba, slot = next((lba, slot) for lba, (ref, slot)
                         in snapshot.items()
                         if slot is not None and ref != lba)
        # Force the delta out of RAM so the read must fetch the packed
        # delta block from the HDD log (the evicted-associate path).
        vb = controller.cache.get(lba, touch=False)
        if vb is not None and vb.has_delta:
            controller.cache.drop_delta(vb)
        tracer = RingBufferTracer()
        controller.set_tracer(tracer)
        latency, (content,) = controller.process_read(
            IORequest(op=OpType.READ, lba=lba))
        assert np.array_equal(content, controller.backing.get(lba))
        names = {e.name for e in tracer.events}
        assert "hdd_log_read" in names
        assert "ssd_read" in names
        assert "delta_decode" in names

    def test_flush_appends_are_relabelled(self):
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        tracer = RingBufferTracer()
        controller.set_tracer(tracer)
        rng = np.random.default_rng(11)
        snapshot = controller.delta_map_snapshot()
        lba = next(lba for lba, (ref, _s) in snapshot.items()
                   if ref != lba)
        base = controller.backing.get(lba).copy()
        base[:8] = rng.integers(0, 256, 8, dtype=np.uint8)
        controller.write(lba, [base])
        controller.flush()
        names = {e.name for e in tracer.events}
        assert "hdd_log_append" in names
        assert "hdd_write" not in \
            {e.name for e in tracer.events
             if e.outcome == "deltas"}, \
            "log appends must not appear as plain data-region writes"


class TestExporters:
    def make_events(self):
        tracer = RingBufferTracer()
        tracer.begin_request("read", 7, 2)
        tracer.instant("cache_lookup", lba=7, outcome="associate")
        tracer.span("ssd_read", 150e-6, lba=7, nbytes=4096,
                    outcome="pipelined")
        tracer.span("delta_decode", 10e-6)
        tracer.end_request(160e-6)
        tracer.begin_background("flush", outcome="deltas")
        tracer.span("hdd_log_append", 2e-3, lba=0, nbytes=8192)
        tracer.end_background()
        return list(tracer.events)

    @staticmethod
    def assert_same(a: TraceEvent, b: TraceEvent) -> None:
        assert a.name == b.name
        assert a.ts == pytest.approx(b.ts, abs=1e-12)
        assert a.dur == pytest.approx(b.dur, abs=1e-12)
        assert a.track == b.track
        assert a.req == b.req
        assert a.lba == b.lba
        assert a.nbytes == b.nbytes
        assert a.outcome == b.outcome

    def test_jsonl_round_trip(self, tmp_path):
        events = self.make_events()
        path = str(tmp_path / "trace.jsonl")
        written = export_jsonl(events, path)
        assert written == len(events)
        loaded = read_jsonl(path)
        assert len(loaded) == len(events)
        for a, b in zip(events, loaded):
            self.assert_same(a, b)

    def test_chrome_round_trip(self, tmp_path):
        events = self.make_events()
        path = str(tmp_path / "trace.json")
        written = export_chrome_trace(events, path)
        assert written == len(events)
        loaded = load_chrome_trace(path)
        assert len(loaded) == len(events)
        for a, b in zip(events, loaded):
            self.assert_same(a, b)

    def test_chrome_format_shape(self):
        import json

        buffer = io.StringIO()
        export_chrome_trace(self.make_events(), buffer)
        payload = json.loads(buffer.getvalue())
        records = payload["traceEvents"]
        phases = {r["ph"] for r in records}
        assert phases == {"M", "X", "i"}
        thread_names = {r["args"]["name"] for r in records
                        if r.get("name") == "thread_name"}
        assert "requests" in thread_names
        spans = [r for r in records if r["ph"] == "X"]
        assert all(r["dur"] > 0 for r in spans)
        assert all(isinstance(r["ts"], float) for r in spans)


class TestDocumentationParity:
    def test_every_event_type_documented(self):
        text = DOCS.read_text(encoding="utf-8")
        documented = set(re.findall(r"^### `(\w+)`", text, re.MULTILINE))
        assert documented == EVENT_TYPES, (
            f"docs/OBSERVABILITY.md drifted from EVENT_TYPES: "
            f"undocumented={sorted(EVENT_TYPES - documented)}, "
            f"stale={sorted(documented - EVENT_TYPES)}")


class TestCLI:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        code = main(["trace", "--workload", "sysbench",
                     "--requests", "400", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "consistency:" in printed
        assert "read phase breakdown" in printed
        events = load_chrome_trace(str(out))
        assert any(e.name == "request_start" for e in events)

    def test_trace_subcommand_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--workload", "sysbench",
                     "--requests", "300", "--out", str(out)])
        assert code == 0
        events = read_jsonl(str(out))
        assert any(e.name == "request_start" for e in events)


class TestPhaseBreakdownEdgeCases:
    """Satellite of the profiler PR: the attribution math depends on
    phase_breakdown being exact under nesting and overlap."""

    @staticmethod
    def request(req, op, ts, dur):
        return TraceEvent("request_start", ts, dur, TRACK_REQUEST,
                          req=req, outcome=op)

    @staticmethod
    def child(req, name, ts, dur):
        return TraceEvent(name, ts, dur, TRACK_REQUEST, req=req)

    def test_nested_children_all_count(self):
        # Two phases laid inside the request interval, one strictly
        # inside the other's timestamps: both contribute their full
        # duration (breakdowns sum durations, not wall intervals).
        events = [
            self.request(1, "read", 0.0, 100e-6),
            self.child(1, "ssd_read", 0.0, 80e-6),
            self.child(1, "delta_decode", 10e-6, 20e-6),
        ]
        breakdown = phase_breakdown(events, op="read")
        assert breakdown.phases["ssd_read"] == pytest.approx(80e-6)
        assert breakdown.phases["delta_decode"] == pytest.approx(20e-6)
        assert breakdown.other_s == pytest.approx(0.0)

    def test_overlapping_children_never_negative_other(self):
        # Overlap can push covered time past the request latency (e.g.
        # parallel device phases); `other` clamps at zero instead of
        # going negative.
        events = [
            self.request(1, "read", 0.0, 50e-6),
            self.child(1, "ssd_read", 0.0, 40e-6),
            self.child(1, "hdd_read", 0.0, 40e-6),
        ]
        breakdown = phase_breakdown(events, op="read")
        assert breakdown.other_s == 0.0
        assert breakdown.total_s == pytest.approx(50e-6)

    def test_instants_and_marks_excluded(self):
        events = [
            self.request(1, "read", 0.0, 30e-6),
            TraceEvent("cache_lookup", 0.0, 0.0, TRACK_REQUEST, req=1),
            TraceEvent("gc", 5e-6, 10e-6, "device", req=1),
            self.child(1, "ssd_read", 0.0, 30e-6),
        ]
        breakdown = phase_breakdown(events, op="read")
        assert set(breakdown.phases) == {"ssd_read"}

    def test_children_without_matching_request_ignored(self):
        events = [
            self.request(1, "read", 0.0, 10e-6),
            self.child(1, "ssd_read", 0.0, 10e-6),
            self.child(2, "hdd_read", 0.0, 99e-6),  # req 2 is a write
            self.request(2, "write", 10e-6, 5e-6),
        ]
        breakdown = phase_breakdown(events, op="read")
        assert breakdown.n_requests == 1
        assert "hdd_read" not in breakdown.phases

    def test_children_may_arrive_before_their_request_event(self):
        # The capture tracer replays child spans before emitting the
        # enclosing request_start; order in the buffer must not matter.
        events = [
            self.child(1, "ssd_read", 0.0, 10e-6),
            self.request(1, "read", 0.0, 10e-6),
        ]
        breakdown = phase_breakdown(events, op="read")
        assert breakdown.phases["ssd_read"] == pytest.approx(10e-6)


class TestExporterCompleteness:
    """Satellite: exported traces carry their own drop accounting."""

    def overflowed_tracer(self):
        tracer = RingBufferTracer(capacity_events=4)
        for lba in range(6):
            tracer.begin_request("read", lba, 1)
            tracer.span("ssd_read", 10e-6)
            tracer.end_request(10e-6)
        return tracer

    def test_jsonl_header_round_trip(self, tmp_path):
        from repro.sim.trace import read_jsonl_header

        tracer = self.overflowed_tracer()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(tracer.events, path, tracer=tracer)
        header = read_jsonl_header(path)
        assert header == {"recorded": len(tracer.events),
                          "dropped": tracer.dropped,
                          "complete": False}
        # The header line must not leak into the event stream.
        assert len(read_jsonl(path)) == len(tracer.events)

    def test_jsonl_without_tracer_has_no_header(self, tmp_path):
        from repro.sim.trace import read_jsonl_header

        tracer = self.overflowed_tracer()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(tracer.events, path)
        assert read_jsonl_header(path) is None

    def test_chrome_metadata_round_trip(self, tmp_path):
        from repro.sim.trace import load_chrome_metadata

        tracer = self.overflowed_tracer()
        path = str(tmp_path / "trace.json")
        export_chrome_trace(tracer.events, path, tracer=tracer)
        header = load_chrome_metadata(path)
        assert header is not None
        assert header["dropped"] == tracer.dropped
        assert header["complete"] is False
        # Drop accounting also rides inside traceEvents as an "M"
        # record, surviving viewers that strip top-level keys.
        import json as json_module
        payload = json_module.loads(Path(path).read_text())
        m_records = [r for r in payload["traceEvents"]
                     if r.get("name") == "trace_completeness"]
        assert len(m_records) == 1 and m_records[0]["ph"] == "M"
        assert len(load_chrome_trace(path)) == len(tracer.events)

    def test_complete_trace_flagged_complete(self, tmp_path):
        from repro.sim.trace import load_chrome_metadata

        tracer = RingBufferTracer()
        tracer.begin_request("read", 1, 1)
        tracer.span("ssd_read", 10e-6)
        tracer.end_request(10e-6)
        path = str(tmp_path / "trace.json")
        export_chrome_trace(tracer.events, path, tracer=tracer)
        assert load_chrome_metadata(path)["complete"] is True

    def test_cli_trace_exports_carry_header(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sim.trace import read_jsonl_header

        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--workload", "sysbench",
                     "--requests", "200", "--out", str(out)])
        assert code == 0
        header = read_jsonl_header(str(out))
        assert header is not None and header["complete"] is True
