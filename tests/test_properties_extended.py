"""Second wave of property-based tests: multi-block requests, the array
composition, recovery round-trips and the page-cache wrapper."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ICASHConfig, ICASHController
from repro.core.array import ICASHArray
from repro.core.recovery import rebuild_controller, recover
from repro.sim.pagecache import HostCachedSystem
from repro.sim.request import BLOCK_SIZE


def _family_dataset(gen: np.random.Generator,
                    n_blocks: int = 64) -> np.ndarray:
    dataset = gen.integers(0, 256, (n_blocks, BLOCK_SIZE), dtype=np.uint8)
    dataset[1::4] = dataset[0]
    dataset[2::4] = dataset[0]
    return dataset


def _tiny_config(**overrides) -> ICASHConfig:
    defaults = dict(
        ssd_capacity_blocks=32,
        data_ram_bytes=8 * BLOCK_SIZE,
        delta_ram_bytes=32 * 1024,
        max_virtual_blocks=192,
        log_blocks=256,
        scan_interval=41,
        scan_window=64,
        flush_interval=67,
        flush_dirty_count=16)
    defaults.update(overrides)
    return ICASHConfig(**defaults)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1),
       st.lists(st.tuples(st.booleans(), st.integers(0, 60),
                          st.integers(1, 4)),
                min_size=5, max_size=120))
def test_multiblock_requests_match_shadow(seed, ops):
    """Spanning reads/writes behave exactly like per-block ones."""
    gen = np.random.default_rng(seed)
    dataset = _family_dataset(gen)
    controller = ICASHController(dataset.copy(), _tiny_config())
    shadow = dataset.copy()
    for is_write, lba, span in ops:
        span = min(span, 64 - lba)
        if span < 1:
            continue
        if is_write:
            payload = []
            for block in range(lba, lba + span):
                content = shadow[block].copy()
                start = int(gen.integers(0, BLOCK_SIZE - 64))
                content[start:start + 64] = gen.integers(0, 256, 64)
                shadow[block] = content
                payload.append(content)
            controller.write(lba, payload)
        else:
            _, contents = controller.read(lba, span)
            for offset, content in enumerate(contents):
                assert np.array_equal(content, shadow[lba + offset])


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1), st.integers(1, 4),
       st.integers(1, 16))
def test_array_equals_single_element_semantics(seed, n_elements,
                                               chunk_blocks):
    """Any array geometry serves exactly the same bytes."""
    gen = np.random.default_rng(seed)
    dataset = _family_dataset(gen, n_blocks=64)
    array = ICASHArray(dataset.copy(), n_elements=n_elements,
                       chunk_blocks=chunk_blocks, config=_tiny_config())
    shadow = dataset.copy()
    for _ in range(40):
        lba = int(gen.integers(0, 60))
        span = int(gen.integers(1, min(5, 64 - lba) + 1))
        if gen.random() < 0.5:
            payload = []
            for block in range(lba, lba + span):
                content = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
                shadow[block] = content
                payload.append(content)
            array.write(lba, payload)
        else:
            _, contents = array.read(lba, span)
            for offset, content in enumerate(contents):
                assert np.array_equal(content, shadow[lba + offset])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1), st.integers(10, 80))
def test_recovery_roundtrip_after_flush(seed, n_writes):
    """flush -> crash -> recover is byte-exact for arbitrary histories."""
    gen = np.random.default_rng(seed)
    dataset = _family_dataset(gen)
    controller = ICASHController(dataset.copy(), _tiny_config())
    controller.ingest()
    shadow = dataset.copy()
    for _ in range(n_writes):
        lba = int(gen.integers(0, 64))
        content = shadow[lba].copy()
        style = gen.random()
        if style < 0.6:   # small anchored change
            content[0:32] = gen.integers(0, 256, 32)
        elif style < 0.9:  # spill-sized rewrite
            content = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        else:             # revert to a sibling (identity-ish)
            content = shadow[(lba + 4) % 64].copy()
        shadow[lba] = content
        controller.write(lba, [content])
    controller.flush()
    image = recover(controller)
    for lba in range(64):
        assert np.array_equal(image.read(lba), shadow[lba]), lba


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1))
def test_rebuilt_controller_equals_image(seed):
    """A restarted element serves what the recovery image promises."""
    gen = np.random.default_rng(seed)
    dataset = _family_dataset(gen)
    controller = ICASHController(dataset.copy(), _tiny_config())
    controller.ingest()
    for _ in range(40):
        lba = int(gen.integers(0, 64))
        content = dataset[lba].copy()
        content[0:40] = gen.integers(0, 256, 40)
        controller.write(lba, [content])
    controller.flush()
    image = recover(controller)
    fresh = rebuild_controller(controller)
    for lba in range(0, 64, 3):
        _, (out,) = fresh.read(lba)
        assert np.array_equal(out, image.read(lba))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2**31 - 1), st.integers(1, 32),
       st.lists(st.tuples(st.booleans(), st.integers(0, 31)),
                max_size=80))
def test_page_cache_is_transparent(seed, cache_blocks, ops):
    """A host cache never changes what any system returns."""
    from repro.baselines import PureSSD
    gen = np.random.default_rng(seed)
    dataset = gen.integers(0, 256, (32, BLOCK_SIZE), dtype=np.uint8)
    cached = HostCachedSystem(PureSSD(dataset.copy()), cache_blocks)
    shadow = dataset.copy()
    for is_write, lba in ops:
        if is_write:
            content = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            shadow[lba] = content
            cached.write(lba, [content])
        else:
            _, (out,) = cached.read(lba)
            assert np.array_equal(out, shadow[lba])
    cached.flush()
    # After a sync the inner system's truth matches too.
    for lba in range(32):
        assert np.array_equal(cached.inner.backing.get(lba), shadow[lba])
