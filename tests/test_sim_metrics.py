"""Tests for the windowed metrics layer (`repro.sim.metrics`).

Covers the instruments and registry (catalogue checking, labels,
callback-backed counters), the bounded series store (window deltas,
downsampling), the periodic sampler, the three exporters, the SLO health
monitor, the full-stack consistency invariant (summed window deltas
reproduce the run-end `StatsCollector` totals), the `repro monitor`
CLI, and the catalogue/documentation parity check.
"""

from __future__ import annotations

import io
import json
import re
from pathlib import Path

import pytest

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.metrics import (DEFAULT_LATENCY_BUCKETS_US,
                               INSTRUMENT_CATALOGUE, NULL_REGISTRY,
                               HealthMonitor, MetricsRegistry, Monitor,
                               NullRegistry, PeriodicSampler, SeriesStore,
                               SLORule, WindowSnapshot, default_slo_rules,
                               export_prometheus, export_series_csv,
                               export_series_jsonl, series_key)
from repro.workloads import SysBenchWorkload

DOCS = Path(__file__).resolve().parents[1] / "docs" / "OBSERVABILITY.md"


def monitored_benchmark(n_requests: int = 800, interval_s: float = 0.01,
                        **monitor_kwargs):
    """One small SysBench run on I-CASH under a sampling monitor."""
    workload = SysBenchWorkload(n_requests=n_requests)
    system = make_system("icash", workload)
    monitor = Monitor(interval_s=interval_s, **monitor_kwargs)
    result = run_benchmark(workload, system, monitor=monitor)
    return monitor, system, result


class TestNullRegistry:
    def test_disabled_and_noop(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("anything_goes")
        counter.inc()
        counter.labels(device="x").inc(5)
        registry.gauge("whatever").set(3.0)
        registry.histogram("also_unchecked").observe(1.0)
        registry.counter("x").set_fn(lambda: 42)
        assert registry.collect() == ({}, {})

    def test_shared_singleton_is_null(self):
        assert NULL_REGISTRY.enabled is False

    def test_default_system_registry_is_null(self):
        workload = SysBenchWorkload(n_requests=10)
        system = make_system("icash", workload)
        assert system.metrics.enabled is False


class TestInstruments:
    def test_counter_inc_and_collect(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_read_total")
        counter.inc()
        counter.inc(4)
        values, kinds = registry.collect()
        assert values["requests_read_total"] == 5.0
        assert kinds["requests_read_total"] == "counter"

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("requests_read_total")
        with pytest.raises(ValueError, match="monotone"):
            counter.inc(-1)

    def test_callback_backed_counter(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.counter("delta_hits_total").set_fn(lambda: state["n"])
        state["n"] = 7
        values, _ = registry.collect()
        assert values["delta_hits_total"] == 7.0

    def test_callback_counter_rejects_inc(self):
        counter = MetricsRegistry().counter("delta_hits_total")
        counter.set_fn(lambda: 1)
        with pytest.raises(RuntimeError, match="callback"):
            counter.inc()

    def test_labels_produce_distinct_series(self):
        registry = MetricsRegistry()
        ops = registry.counter("device_read_ops_total", ("device",))
        ops.labels(device="ssd").inc(3)
        ops.labels(device="hdd").inc(5)
        values, _ = registry.collect()
        assert values[series_key("device_read_ops_total",
                                 device="ssd")] == 3.0
        assert values[series_key("device_read_ops_total",
                                 device="hdd")] == 5.0

    def test_wrong_labelnames_rejected(self):
        registry = MetricsRegistry()
        ops = registry.counter("device_read_ops_total", ("device",))
        with pytest.raises(ValueError, match="labels"):
            ops.labels(disk="ssd")

    def test_unknown_instrument_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="INSTRUMENT_CATALOGUE"):
            registry.counter("made_up_metric_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("requests_read_total")

    def test_relabeling_rejected(self):
        registry = MetricsRegistry()
        registry.counter("device_read_ops_total", ("device",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("device_read_ops_total")

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_read_total")
        b = registry.counter("requests_read_total")
        assert a is b

    def test_histogram_buckets_cumulative_and_ordered(self):
        registry = MetricsRegistry()
        hist = registry.histogram("read_latency_us")
        for value in (1.0, 15.0, 15.0, 40_000.0, 5e6):
            hist.observe(value)
        values, kinds = registry.collect()
        le_1 = values[series_key("read_latency_us_bucket", le="1")]
        le_20 = values[series_key("read_latency_us_bucket", le="20")]
        le_inf = values[series_key("read_latency_us_bucket", le="+Inf")]
        assert le_1 == 1.0        # the 1.0 sample (le is inclusive)
        assert le_20 == 3.0       # plus both 15s
        assert le_inf == 5.0      # everything, incl. the 5e6 outlier
        assert values["read_latency_us_count"] == 5.0
        assert values["read_latency_us_sum"] == pytest.approx(5040031.0)
        assert kinds["read_latency_us_count"] == "counter"
        # Bounds cover five orders of magnitude.
        assert DEFAULT_LATENCY_BUCKETS_US[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_US[-1] == 1e5


class TestSeriesStore:
    @staticmethod
    def _store_with(values_per_window, kinds):
        store = SeriesStore(max_windows=64)
        store.set_baseline({k: 0.0 for k in kinds}, kinds)
        t = 0.0
        for values in values_per_window:
            store.append(WindowSnapshot(t, t + 1.0, values))
            t += 1.0
        return store

    def test_window_deltas_and_gauge_passthrough(self):
        kinds = {"c": "counter", "g": "gauge"}
        store = self._store_with(
            [{"c": 3.0, "g": 0.5}, {"c": 10.0, "g": 0.2}], kinds)
        assert store.window_delta(0, "c") == 3.0
        assert store.window_delta(1, "c") == 7.0
        assert store.window_row(1) == {"c": 7.0, "g": 0.2}
        assert store.counter_total("c") == 10.0

    def test_nonzero_baseline_subtracted(self):
        store = SeriesStore(max_windows=8)
        store.set_baseline({"c": 100.0}, {"c": "counter"})
        store.append(WindowSnapshot(0.0, 1.0, {"c": 130.0}))
        assert store.window_delta(0, "c") == 30.0
        assert store.counter_total("c") == 30.0

    def test_downsampling_merges_pairs_and_preserves_totals(self):
        store = SeriesStore(max_windows=4)
        store.set_baseline({"c": 0.0}, {"c": "counter"})
        merged_flags = [
            store.append(WindowSnapshot(float(i), float(i + 1),
                                        {"c": float((i + 1) * 10)}))
            for i in range(9)]
        # Two overflows: at the 5th and (after re-filling) later appends.
        assert any(merged_flags)
        assert len(store) <= 4 + 1
        assert store.downsample_factor >= 2
        # Coverage is continuous and totals are exact after merging.
        assert store.windows[0].t_start == 0.0
        assert store.windows[-1].t_end == 9.0
        for earlier, later in zip(store.windows, store.windows[1:]):
            assert earlier.t_end == later.t_start
        assert store.counter_total("c") == 90.0
        assert sum(store.window_delta(i, "c")
                   for i in range(len(store))) == 90.0

    def test_resolve_key_unique_label_match(self):
        kinds = {series_key("x", device="ssd"): "counter"}
        store = SeriesStore(max_windows=4)
        store.kinds.update(kinds)
        assert store.resolve_key("x") == 'x{device="ssd"}'
        assert store.resolve_key("missing") is None

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError, match="two windows"):
            SeriesStore(max_windows=1)


class TestPeriodicSampler:
    def test_windows_close_on_boundaries(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_read_total")
        sampler = PeriodicSampler(registry, interval_s=1.0)
        sampler.start(0.0)
        counter.inc(2)
        sampler.observe(0.5)        # inside window 0 - nothing closes
        assert len(sampler.store) == 0
        counter.inc(3)
        sampler.observe(2.5)        # crosses t=1 and t=2
        assert len(sampler.store) == 2
        sampler.finish(2.5)         # trailing partial window
        assert len(sampler.store) == 3
        assert sampler.store.counter_total("requests_read_total") == 5.0

    def test_interval_doubles_on_store_merge(self):
        registry = MetricsRegistry()
        sampler = PeriodicSampler(registry, interval_s=1.0,
                                  store=SeriesStore(max_windows=4))
        sampler.start(0.0)
        sampler.observe(6.0)
        assert sampler.store.downsample_factor == 2
        assert sampler.interval_s == 2.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            PeriodicSampler(MetricsRegistry(), interval_s=0.0)

    def test_double_start_rejected(self):
        sampler = PeriodicSampler(MetricsRegistry(), interval_s=1.0)
        sampler.start(0.0)
        with pytest.raises(RuntimeError, match="started"):
            sampler.start(0.0)


class TestExporters:
    @staticmethod
    def _sampled_registry():
        registry = MetricsRegistry()
        counter = registry.counter("requests_read_total")
        gauge = registry.gauge("delta_hit_ratio")
        hist = registry.histogram("read_latency_us")
        sampler = PeriodicSampler(registry, interval_s=1.0)
        sampler.start(0.0)
        counter.inc(3)
        gauge.set(0.25)
        hist.observe(50.0)
        sampler.observe(1.0)
        counter.inc(4)
        gauge.set(0.75)
        hist.observe(150.0)
        sampler.finish(1.5)
        return registry, sampler.store

    def test_csv_columns_sum_to_totals(self):
        _, store = self._sampled_registry()
        buf = io.StringIO()
        rows = export_series_csv(store, buf)
        assert rows == 2
        lines = buf.getvalue().splitlines()
        header = lines[0].split(",")
        idx = header.index("requests_read_total")
        deltas = [float(line.split(",")[idx]) for line in lines[1:]]
        assert deltas == [3.0, 4.0]
        assert sum(deltas) == store.counter_total("requests_read_total")

    def test_csv_quotes_labelled_headers(self):
        registry = MetricsRegistry()
        registry.counter("device_read_ops_total", ("device",)) \
            .labels(device="ssd").inc()
        sampler = PeriodicSampler(registry, interval_s=1.0)
        sampler.start(0.0)
        sampler.finish(1.0)
        buf = io.StringIO()
        export_series_csv(sampler.store, buf)
        header = buf.getvalue().splitlines()[0]
        assert '"device_read_ops_total{device=""ssd""}"' in header

    def test_jsonl_rows_parse_and_carry_deltas(self):
        _, store = self._sampled_registry()
        buf = io.StringIO()
        rows = export_series_jsonl(store, buf)
        assert rows == 2
        records = [json.loads(line)
                   for line in buf.getvalue().splitlines()]
        assert records[0]["window"] == 0
        assert records[1]["series"]["requests_read_total"] == 4.0
        assert records[1]["series"]["delta_hit_ratio"] == 0.75
        assert records[0]["t_end_s"] == 1.0

    def test_prometheus_format(self):
        registry, _ = self._sampled_registry()
        buf = io.StringIO()
        samples = export_prometheus(registry, buf)
        text = buf.getvalue()
        assert samples > 0
        assert "# HELP requests_read_total" in text
        assert "# TYPE requests_read_total counter" in text
        assert "requests_read_total 7" in text
        assert "# TYPE read_latency_us histogram" in text
        # Buckets ascend with +Inf last, per the exposition format.
        bucket_lines = [line for line in text.splitlines()
                        if line.startswith("read_latency_us_bucket")]
        les = [re.search(r'le="([^"]+)"', line).group(1)
               for line in bucket_lines]
        assert les[-1] == "+Inf"
        finite = [float(le) for le in les[:-1]]
        assert finite == sorted(finite)

    def test_file_path_destinations(self, tmp_path):
        registry, store = self._sampled_registry()
        csv_path = tmp_path / "series.csv"
        jsonl_path = tmp_path / "series.jsonl"
        prom_path = tmp_path / "metrics.prom"
        assert export_series_csv(store, str(csv_path)) == 2
        assert export_series_jsonl(store, str(jsonl_path)) == 2
        assert export_prometheus(registry, str(prom_path)) > 0
        assert csv_path.read_text().startswith("window,")


class TestHealthMonitor:
    @staticmethod
    def _store(kinds, windows):
        store = SeriesStore(max_windows=16)
        store.set_baseline({k: 0.0 for k in kinds}, kinds)
        t = 0.0
        for values in windows:
            store.append(WindowSnapshot(t, t + 1.0, values))
            t += 1.0
        return store

    def test_gauge_value_rule(self):
        store = self._store({"delta_log_occupancy": "gauge"},
                            [{"delta_log_occupancy": 0.5},
                             {"delta_log_occupancy": 0.95}])
        monitor = HealthMonitor([SLORule(
            "high_water", "delta_log_occupancy", "value", "max", 0.9)])
        breaches = monitor.evaluate(store)
        assert len(breaches) == 1
        assert breaches[0].window == 1
        assert breaches[0].value == 0.95
        assert "high_water" in monitor.render()

    def test_rate_rule_with_scale(self):
        key = series_key("ssd_program_total", device="ssd")
        store = self._store({key: "counter"},
                            [{key: 10.0}, {key: 12.0}])
        # 10 pages in window 0 -> scaled x86400 = 864000/day; window 1
        # writes only 2 pages -> 172800/day, under the bar.
        monitor = HealthMonitor([SLORule(
            "budget", "ssd_program_total", "rate", "max", 500_000.0,
            scale=86400.0)])
        breaches = monitor.evaluate(store)
        assert [b.window for b in breaches] == [0]
        assert breaches[0].value == pytest.approx(864000.0)

    def test_min_bound_rule(self):
        store = self._store({"delta_hit_ratio": "gauge"},
                            [{"delta_hit_ratio": 0.9},
                             {"delta_hit_ratio": 0.1}])
        monitor = HealthMonitor([SLORule(
            "hit_floor", "delta_hit_ratio", "value", "min", 0.5)])
        assert [b.window for b in monitor.evaluate(store)] == [1]

    def test_p99_rule_uses_window_deltas(self):
        registry = MetricsRegistry()
        hist = registry.histogram("read_latency_us")
        sampler = PeriodicSampler(registry, interval_s=1.0)
        sampler.start(0.0)
        for _ in range(100):
            hist.observe(10.0)      # window 0: all fast
        sampler.observe(1.0)
        for _ in range(100):
            hist.observe(90_000.0)  # window 1: all slow
        sampler.finish(2.0)
        monitor = HealthMonitor([SLORule(
            "read_p99", "read_latency_us", "p99", "max", 30_000.0)])
        breaches = monitor.evaluate(sampler.store)
        # Only window 1 breaches: its p99 reflects that window alone,
        # not the cumulative distribution.
        assert [b.window for b in breaches] == [1]
        assert sampler.store.window_quantile(0, "read_latency_us",
                                             0.99) == 10.0

    def test_missing_metric_is_skipped(self):
        store = self._store({"delta_hit_ratio": "gauge"},
                            [{"delta_hit_ratio": 0.5}])
        monitor = HealthMonitor([SLORule(
            "ghost", "no_such_metric", "value", "max", 1.0)])
        assert monitor.evaluate(store) == []

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="bound"):
            SLORule("r", "m", "value", "between", 1.0)
        with pytest.raises(ValueError, match="stat"):
            SLORule("r", "m", "median", "max", 1.0)

    def test_default_rules_cover_the_issue_set(self):
        rules = {rule.name: rule for rule in default_slo_rules(1000)}
        assert "read_p99" in rules
        assert "ssd_daily_write_budget" in rules
        assert "delta_log_high_water" in rules
        assert rules["ssd_daily_write_budget"].scale == 86400.0
        assert rules["ssd_daily_write_budget"].threshold == 20_000.0


class TestFullStackConsistency:
    """The acceptance invariant: summed per-window counter deltas
    reproduce the end-of-run StatsCollector totals exactly."""

    def test_request_counters_match_stats(self):
        monitor, system, result = monitored_benchmark()
        store = monitor.store
        assert len(store) > 1
        assert store.counter_total("requests_read_total") \
            == system.stats.latency("read").count
        assert store.counter_total("requests_write_total") \
            == system.stats.latency("write").count
        assert result.series is store

    def test_controller_counters_match_stats(self):
        monitor, system, _ = monitored_benchmark()
        store = monitor.store
        assert store.counter_total("delta_hits_total") \
            == system.stats.count("ram_delta_hits")
        assert store.counter_total("delta_log_fetches_total") \
            == system.stats.count("log_delta_fetches")
        assert store.counter_total("delta_writes_total") \
            == system.stats.count("delta_writes")

    def test_device_counters_match_stats(self):
        monitor, system, _ = monitored_benchmark()
        store = monitor.store
        ssd_key = store.resolve_key("ssd_program_total")
        assert ssd_key is not None
        # The monitor attaches after ingest, so the baseline subtracts
        # the load phase: totals match the *post-attach* delta.
        expected = (system.ssd.stats.count("write_blocks")
                    + system.ssd.stats.count("gc_page_moves")
                    - store.baseline.get(ssd_key, 0.0))
        assert store.counter_total(ssd_key) == expected
        hdd_key = store.resolve_key("hdd_seek_total")
        assert store.windows[-1].values[hdd_key] == \
            (system.hdd.stats.count("near_accesses")
             + system.hdd.stats.count("random_accesses"))

    def test_sum_of_window_deltas_telescopes(self):
        monitor, _, _ = monitored_benchmark()
        store = monitor.store
        for key, kind in store.kinds.items():
            if kind != "counter":
                continue
            summed = sum(store.window_delta(i, key)
                         for i in range(len(store)))
            assert summed == pytest.approx(store.counter_total(key)), key

    def test_gauges_report_plausible_ranges(self):
        monitor, system, _ = monitored_benchmark()
        store = monitor.store
        last = store.windows[-1].values
        assert 0.0 <= last["delta_log_occupancy"] <= 1.0
        assert 0.0 <= last["ram_delta_fill"] <= 1.0
        assert 0.0 <= last["delta_hit_ratio"] <= 1.0
        assert last["offered_load_streams"] == 16  # SysBench's streams

    def test_report_renders(self):
        monitor, _, _ = monitored_benchmark()
        report = monitor.render_report()
        assert "per-window report" in report
        assert "read_p99_us" in report
        assert "health:" in report

    def test_delta_log_wrap_counter(self):
        from repro.delta.encoder import encode_delta
        from repro.delta.packer import DeltaLog, DeltaRecord
        from repro.devices.hdd import HardDiskDrive
        import numpy as np

        hdd = HardDiskDrive(64)
        log = DeltaLog(hdd, base_lba=0, size_blocks=2)
        base = np.zeros(4096, dtype=np.uint8)
        changed = base.copy()
        changed[:8] = 1
        delta = encode_delta(changed, base)
        assert log.wrap_count == 0
        for _ in range(3):
            log.append([DeltaRecord(0, 1, delta)])
        assert log.wrap_count >= 1
        assert 0.0 <= log.occupancy <= 1.0
        log.reset()
        assert log.occupancy == 0.0
        # Monotone across compaction: reset() does not rewind it.
        assert log.wrap_count >= 1


class TestRunnerIntegration:
    def test_plain_runs_have_no_series(self):
        workload = SysBenchWorkload(n_requests=60)
        system = make_system("icash", workload)
        result = run_benchmark(workload, system)
        assert result.series is None
        assert result.slo_breaches == []

    def test_monitor_on_baseline_systems(self):
        # Device + request instruments work on every architecture, not
        # just I-CASH (controller gauges are I-CASH-specific).
        for name in ("fusion-io", "raid0", "lru"):
            workload = SysBenchWorkload(n_requests=150)
            system = make_system(name, workload)
            monitor = Monitor(interval_s=0.01)
            run_benchmark(workload, system, monitor=monitor)
            store = monitor.store
            assert store.counter_total("requests_read_total") \
                == system.stats.latency("read").count, name


class TestCLI:
    def test_monitor_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["monitor", "--workload", "sysbench",
                     "--requests", "400", "--interval", "0.005",
                     "--out-dir", str(tmp_path)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "per-window report" in printed
        assert "consistency:" in printed
        assert (tmp_path / "series.csv").exists()
        assert (tmp_path / "series.jsonl").exists()
        assert (tmp_path / "metrics.prom").exists()
        prom = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE requests_read_total counter" in prom

    def test_monitor_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        code = main(["monitor", "--workload", "sysbench",
                     "--requests", "400", "--interval", "0.005",
                     "--out-dir", str(tmp_path), "--json",
                     "--no-ledger"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)  # pure JSON on stdout, nothing else
        assert doc["consistency"]["ok"] is True
        assert doc["windows"], "at least one sampled window"
        first = doc["windows"][0]
        assert {"window", "t_start_s", "t_end_s", "series"} <= set(first)
        # exports are still written in JSON mode
        assert (tmp_path / "series.csv").exists()
        assert sorted(doc["exports"]) == ["csv", "jsonl", "prometheus"]

    def test_trace_subcommand_reports_drop_counts(self, tmp_path,
                                                  capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--workload", "sysbench",
                     "--requests", "300", "--out", str(out),
                     "--buffer", "64"])
        assert code == 0
        captured = capsys.readouterr()
        assert re.search(r"events recorded: \d+, dropped: [1-9]",
                         captured.out)
        assert "oldest events were dropped" in captured.err

    def test_trace_subcommand_reports_zero_drops(self, tmp_path,
                                                 capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--workload", "sysbench",
                     "--requests", "200", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "dropped: 0" in captured.out
        assert "dropped" not in captured.err


class TestDocumentationParity:
    def test_every_instrument_documented(self):
        text = DOCS.read_text(encoding="utf-8")
        documented = set(re.findall(
            r"^\| `(\w+)` \| (?:counter|gauge|histogram) \|", text,
            re.MULTILINE))
        catalogue = set(INSTRUMENT_CATALOGUE)
        assert documented == catalogue, (
            f"docs/OBSERVABILITY.md drifted from INSTRUMENT_CATALOGUE: "
            f"undocumented={sorted(catalogue - documented)}, "
            f"stale={sorted(documented - catalogue)}")

    def test_documented_kinds_match_catalogue(self):
        text = DOCS.read_text(encoding="utf-8")
        for name, kind in re.findall(
                r"^\| `(\w+)` \| (counter|gauge|histogram) \|", text,
                re.MULTILINE):
            assert INSTRUMENT_CATALOGUE[name].kind == kind, name


class TestLabelEscaping:
    HOSTILE = 'quote" back\\slash\nnewline'

    def test_series_key_round_trips_hostile_values(self):
        from repro.sim.metrics import parse_series_key

        labels = {"device": self.HOSTILE, "kind": "plain"}
        key = series_key("ops_total", **labels)
        assert "\n" not in key, "raw newline would split the line"
        assert parse_series_key(key) == ("ops_total", labels)
        assert parse_series_key("bare_name") == ("bare_name", {})

    def test_escape_unescape_inverse(self):
        from repro.sim.metrics import (escape_label_value,
                                       unescape_label_value)

        for value in ("", "plain", '"', "\\", "\n", self.HOSTILE,
                      "\\n literal", 'a"b\\c\nd'):
            escaped = escape_label_value(value)
            assert "\n" not in escaped
            assert unescape_label_value(escaped) == value

    def test_malformed_keys_rejected(self):
        from repro.sim.metrics import parse_series_key

        for bad in ("x{", 'x{a=b}', 'x{a="v" b="w"}', 'x{a="v}',
                    'x{="v"}'):
            with pytest.raises(ValueError, match="malformed"):
                parse_series_key(bad)

    def test_prometheus_exposition_stays_line_oriented(self):
        from repro.sim.metrics import parse_series_key

        registry = MetricsRegistry()
        registry.counter("faults_injected_total", ("kind",)) \
            .labels(kind=self.HOSTILE).inc(3)
        buf = io.StringIO()
        samples = export_prometheus(registry, buf)
        lines = [line for line in buf.getvalue().splitlines()
                 if line and not line.startswith("#")]
        assert len(lines) == samples == 1
        key, value = lines[0].rsplit(" ", 1)
        assert float(value) == 3.0
        name, labels = parse_series_key(key)
        assert name == "faults_injected_total"
        assert labels == {"kind": self.HOSTILE}

    def test_bucket_deltas_survive_hostile_sibling_label(self):
        # A label value containing a fake `le="..."` used to confuse
        # the histogram bucket parser; the real parser reads labels.
        trap = 'trap le="9999" trap'
        k_lo = series_key("lat_bucket", le="1.0", device=trap)
        k_inf = series_key("lat_bucket", le="+Inf", device=trap)
        kinds = {k_lo: "counter", k_inf: "counter",
                 "lat_count": "counter", "lat_sum": "counter"}
        store = SeriesStore(max_windows=4)
        store.set_baseline(dict.fromkeys(kinds, 0.0), kinds)
        store.append(WindowSnapshot(0.0, 1.0, {
            k_lo: 3.0, k_inf: 4.0, "lat_count": 4.0, "lat_sum": 10.0}))
        deltas = store._bucket_deltas(0, "lat")
        assert [bound for bound, _ in deltas] == [1.0, float("inf")]
        assert store.window_quantile(0, "lat", 0.5) == 1.0


class TestSeriesStorePairMergeEdges:
    @staticmethod
    def _fill(store, n, start=0.0):
        for i in range(n):
            t = start + float(i)
            store.append(WindowSnapshot(t, t + 1.0,
                                        {"c": (start + i + 1) * 10.0}))

    def test_single_point_series_never_merges(self):
        store = SeriesStore(max_windows=2)
        store.set_baseline({"c": 0.0}, {"c": "counter"})
        assert store.append(WindowSnapshot(0.0, 1.0, {"c": 5.0})) \
            is False
        assert len(store) == 1
        assert store.downsample_factor == 1
        assert store.window_delta(0, "c") == 5.0
        assert store.counter_total("c") == 5.0

    def test_odd_point_count_keeps_trailing_window(self):
        store = SeriesStore(max_windows=4)
        store.set_baseline({"c": 0.0}, {"c": "counter"})
        self._fill(store, 5)  # fifth append overflows: 5 -> 3 windows
        assert len(store) == 3
        assert store.downsample_factor == 2
        # Pairs merged, odd tail survives unmerged; coverage continuous.
        spans = [(w.t_start, w.t_end) for w in store.windows]
        assert spans == [(0.0, 2.0), (2.0, 4.0), (4.0, 5.0)]
        assert store.counter_total("c") == 50.0
        assert sum(store.window_delta(i, "c")
                   for i in range(len(store))) == 50.0

    def test_merge_then_sample_deterministic(self):
        def build():
            store = SeriesStore(max_windows=4)
            store.set_baseline({"c": 0.0}, {"c": "counter"})
            self._fill(store, 11)
            return store

        one, two = build(), build()
        assert [(w.t_start, w.t_end, w.values) for w in one.windows] \
            == [(w.t_start, w.t_end, w.values) for w in two.windows]
        assert one.downsample_factor == two.downsample_factor
        # Windows re-merge deterministically, and deltas still sum to
        # the exact total after repeated downsampling.
        assert one.counter_total("c") == 110.0
        assert sum(one.window_delta(i, "c")
                   for i in range(len(one))) == 110.0
