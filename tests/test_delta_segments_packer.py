"""Unit tests for the segment pool, the delta-block packer and the log."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.encoder import Delta, encode_delta
from repro.delta.packer import (MAGIC, DeltaBlockPacker, DeltaLog,
                                DeltaRecord)
from repro.delta.segments import SEGMENT_BYTES, SegmentPool
from repro.devices.hdd import HardDiskDrive
from repro.sim.request import BLOCK_SIZE

from conftest import make_block


def delta_of_size(payload_len: int, offset: int = 0) -> Delta:
    return Delta(runs=((offset, bytes(payload_len)),))


class TestSegmentPool:
    def test_segments_for_rounds_up(self):
        assert SegmentPool.segments_for(1) == 1
        assert SegmentPool.segments_for(64) == 1
        assert SegmentPool.segments_for(65) == 2
        assert SegmentPool.segments_for(0) == 1  # a delta costs >= 1

    def test_allocate_free_roundtrip(self):
        pool = SegmentPool(1024)
        used = pool.allocate(130)  # 3 segments
        assert used == 3
        assert pool.used_segments == 3
        pool.free(130)
        assert pool.used_segments == 0

    def test_exhaustion_raises(self):
        pool = SegmentPool(SEGMENT_BYTES * 2)
        pool.allocate(120)
        with pytest.raises(MemoryError):
            pool.allocate(1)

    def test_over_free_raises(self):
        pool = SegmentPool(1024)
        pool.allocate(64)
        with pytest.raises(ValueError):
            pool.free(65)

    def test_peak_tracking(self):
        pool = SegmentPool(1024)
        pool.allocate(300)
        pool.free(300)
        assert pool.peak_segments == SegmentPool.segments_for(300)

    def test_tiny_pool_rejected(self):
        with pytest.raises(ValueError):
            SegmentPool(SEGMENT_BYTES - 1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 500), max_size=30))
    def test_alloc_free_never_leaks(self, sizes):
        pool = SegmentPool(1 << 20)
        for size in sizes:
            pool.allocate(size)
        for size in sizes:
            pool.free(size)
        assert pool.used_segments == 0


class TestPacker:
    def records(self, count: int, payload_len: int = 100):
        return [DeltaRecord(lba=i, ref_lba=1000 + i,
                            delta=delta_of_size(payload_len))
                for i in range(count)]

    def test_pack_unpack_roundtrip(self):
        packer = DeltaBlockPacker()
        records = self.records(10)
        blocks = packer.pack(records)
        unpacked = [r for block in blocks for r in packer.unpack(block)]
        assert [(r.lba, r.ref_lba, r.delta) for r in unpacked] == \
            [(r.lba, r.ref_lba, r.delta) for r in records]

    def test_many_deltas_per_block(self):
        """The core packing claim: one 4 KB block carries many deltas."""
        packer = DeltaBlockPacker()
        records = self.records(20, payload_len=100)
        blocks = packer.pack(records)
        assert len(blocks) == 1

    def test_blocks_are_exactly_block_size(self):
        packer = DeltaBlockPacker()
        for block in packer.pack(self.records(40, payload_len=200)):
            assert len(block) == BLOCK_SIZE

    def test_sequence_numbers_stamped(self):
        packer = DeltaBlockPacker()
        blocks = packer.pack(self.records(60, payload_len=300),
                             start_sequence=5)
        sequences = [packer.sequence_of(b) for b in blocks]
        assert sequences == list(range(5, 5 + len(blocks)))

    def test_oversized_record_rejected(self):
        packer = DeltaBlockPacker()
        huge = DeltaRecord(0, 0, delta_of_size(BLOCK_SIZE))
        with pytest.raises(ValueError, match="spill"):
            packer.pack([huge])

    def test_bad_magic_rejected(self):
        packer = DeltaBlockPacker()
        with pytest.raises(ValueError, match="magic"):
            packer.unpack(b"\x00" * BLOCK_SIZE)

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            DeltaBlockPacker.unpack(b"\x00" * 100)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2**40),
                              st.integers(0, 2**40),
                              st.integers(0, 1500)),
                    min_size=1, max_size=50))
    def test_roundtrip_property(self, specs):
        packer = DeltaBlockPacker()
        records = [DeltaRecord(lba, ref, delta_of_size(size))
                   for lba, ref, size in specs]
        blocks = packer.pack(records)
        unpacked = [r for block in blocks for r in packer.unpack(block)]
        assert [(r.lba, r.ref_lba, r.delta.size_bytes) for r in unpacked] \
            == [(r.lba, r.ref_lba, r.delta.size_bytes) for r in records]


class TestDeltaLog:
    def make_log(self, size_blocks: int = 64):
        hdd = HardDiskDrive(100_000)
        return DeltaLog(hdd, base_lba=50_000, size_blocks=size_blocks), hdd

    def test_append_returns_slots_and_latency(self):
        log, hdd = self.make_log()
        records = [DeltaRecord(i, 0, delta_of_size(100)) for i in range(5)]
        latency, slots, displaced = log.append(records)
        assert latency > 0
        assert slots == [0]
        assert displaced == []
        assert hdd.write_ops == 1

    def test_append_is_sequential_on_hdd(self):
        log, hdd = self.make_log()
        log.append([DeltaRecord(0, 0, delta_of_size(3000))])
        before = hdd.busy_time
        log.append([DeltaRecord(1, 0, delta_of_size(3000))])
        # The second append continues where the first ended: pure transfer.
        assert hdd.busy_time - before == pytest.approx(
            hdd.spec.transfer_time(1))

    def test_read_block_returns_all_packed_records(self):
        log, _ = self.make_log()
        records = [DeltaRecord(i, 9, delta_of_size(80)) for i in range(12)]
        _, slots, _ = log.append(records)
        latency, out = log.read_block(slots[0])
        assert latency > 0
        assert {r.lba for r in out} == set(range(12))

    def test_read_missing_slot_raises(self):
        log, _ = self.make_log()
        with pytest.raises(KeyError):
            log.read_block(3)

    def test_peek_charges_no_latency(self):
        log, hdd = self.make_log()
        _, slots, _ = log.append([DeltaRecord(0, 0, delta_of_size(10))])
        busy = hdd.busy_time
        records = log.peek_block(slots[0])
        assert hdd.busy_time == busy
        assert records[0].lba == 0

    def test_replay_in_flush_order(self):
        log, _ = self.make_log()
        log.append([DeltaRecord(1, 0, delta_of_size(3000))])
        log.append([DeltaRecord(1, 0, delta_of_size(2900))])
        replayed = list(log.replay())
        assert len(replayed) == 2
        # Last record wins for recovery: order must be flush order.
        assert replayed[-1].delta.size_bytes \
            == delta_of_size(2900).size_bytes

    def test_wrap_reports_displaced_records(self):
        log, _ = self.make_log(size_blocks=2)
        log.append([DeltaRecord(0, 0, delta_of_size(3000))])
        log.append([DeltaRecord(1, 0, delta_of_size(3000))])
        _, _, displaced = log.append([DeltaRecord(2, 0, delta_of_size(3000))])
        assert [(slot, r.lba) for slot, r in displaced] == [(0, 0)]

    def test_empty_append_is_free(self):
        log, hdd = self.make_log()
        latency, slots, displaced = log.append([])
        assert (latency, slots, displaced) == (0.0, [], [])
        assert hdd.write_ops == 0

    def test_real_deltas_survive_log_roundtrip(self, rng):
        log, _ = self.make_log()
        ref = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = ref.copy()
        target[10:60] = 0
        delta = encode_delta(target, ref)
        _, slots, _ = log.append([DeltaRecord(42, 7, delta)])
        _, out = log.read_block(slots[0])
        from repro.delta.encoder import apply_delta
        assert np.array_equal(apply_delta(out[0].delta, ref), target)
