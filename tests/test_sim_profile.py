"""Tests for the simulated-time profiler (`repro.sim.profile`) and the
benchmark regression harness (`repro.experiments.bench`).

The acceptance invariant everything rests on: per-request ``(device,
phase)`` attributions sum to the request's end-to-end latency, so the
attribution table's per-class totals and means reconcile *exactly* with
the run's independent LatencyStats — on both engines.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.experiments import bench
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.load import ClosedLoopLoad, OpenLoopLoad
from repro.sim.profile import (NULL_PROFILER, AttributionTable,
                               NullProfiler, Profiler, classify_phase,
                               export_folded, fold_stacks, profile_trace)
from repro.sim.trace import RingBufferTracer
from repro.workloads import SysBenchWorkload


def profiled_run(engine: str, n_requests: int = 500, seed: int = 11,
                 **kwargs):
    workload = SysBenchWorkload(scale=0.05, n_requests=n_requests,
                                seed=seed)
    system = make_system("icash", workload)
    profiler = Profiler()
    result = run_benchmark(workload, system, engine=engine,
                           profiler=profiler, **kwargs)
    return profiler.table, result


class TestClassifyPhase:
    def test_device_prefixed_names_split(self):
        assert classify_phase("ssd_read") == ("ssd", "read")
        assert classify_phase("hdd_log_append") == ("hdd", "log_append")
        assert classify_phase("raid0_write") == ("raid0", "write")

    def test_cpu_phases_unprefixed(self):
        assert classify_phase("delta_decode") == ("cpu", "delta_decode")
        assert classify_phase("flush") == ("cpu", "flush")

    def test_queue_span_pools(self):
        assert classify_phase("queue") == ("queue", "wait")

    def test_known_device_pins_attribution(self):
        # The capture tracer knows which device emitted a re-labelled
        # span; the name's prefix is stripped only when it matches.
        assert classify_phase("hdd_log_append", device="hdd") == \
            ("hdd", "log_append")
        assert classify_phase("hdd_log_append", device="nvram") == \
            ("nvram", "hdd_log_append")


class TestAttributionTable:
    def test_items_merge_and_residual_covers_gap(self):
        table = AttributionTable()
        table.record_request(
            "read",
            [("ssd", "read", 10e-6), ("ssd", "read", 5e-6),
             ("cpu", "delta_decode", 3e-6)],
            20e-6)
        (request,) = table.requests
        assert request.covered_s == pytest.approx(20e-6)
        rows = {(r.device, r.phase): r for r in table.rows("read")}
        assert rows[("ssd", "read")].total_s == pytest.approx(15e-6)
        assert rows[("host", "other")].total_s == pytest.approx(2e-6)
        # Row means spread over every request, so they sum to the mean.
        assert sum(table.row_mean_us(r) for r in table.rows("read")) \
            == pytest.approx(table.mean_us("read"))

    def test_zero_duration_items_dropped(self):
        table = AttributionTable()
        table.record_request("read", [("ssd", "read", 0.0),
                                      ("ssd", "read", 4e-6)], 4e-6)
        (row,) = table.rows("read")
        assert row.n_touched == 1

    def test_blame_names_dominant_tail_pair(self):
        table = AttributionTable()
        for i in range(1, 100):
            table.record_request("read", [("ssd", "read", i * 1e-6)],
                                 i * 1e-6)
        table.record_request(
            "read", [("ssd", "read", 10e-6),
                     ("hdd", "queue_wait", 9990e-6)], 1e-2)
        blame = table.blame("read")
        # Nearest-rank p99 of the 100 samples is 99 us, so the tail set
        # is {99 us bulk request, 10 ms outlier} and the outlier's HDD
        # wait dominates the pooled tail time.
        assert (blame.device, blame.phase) == ("hdd", "queue_wait")
        assert blame.tail_n == 2
        assert blame.share == pytest.approx(9990e-6 / (1e-2 + 99e-6))
        assert "hdd queue_wait" in blame.render()

    def test_render_and_to_rows(self):
        table = AttributionTable()
        table.record_request("write", [("ssd", "write", 70e-6)], 75e-6)
        text = table.render()
        assert "write critical path" in text
        assert "ssd" in text and "blame:" in text
        (ssd_row, host_row) = table.to_rows()
        assert ssd_row["device"] == "ssd"
        assert ssd_row["share"] == pytest.approx(70 / 75)
        assert host_row["phase"] == "other"
        assert table.render("read").endswith("(no requests profiled)")

    def test_empty_table(self):
        table = AttributionTable()
        assert table.render() == "(no requests profiled)"
        assert table.blame("read") is None
        assert table.to_rows() == []


class TestNullProfiler:
    def test_disabled_and_noop(self):
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.table is None
        NULL_PROFILER.record_request("read", [("ssd", "read", 1.0)], 1.0)
        assert isinstance(NULL_PROFILER, NullProfiler)

    def test_default_run_has_no_attribution(self):
        workload = SysBenchWorkload(scale=0.05, n_requests=200)
        result = run_benchmark(workload, make_system("icash", workload))
        assert result.attribution is None


class TestEngineReconciliation:
    """The acceptance criterion: attribution reconciles with the
    end-to-end latency statistics, on both engines."""

    @pytest.mark.parametrize("engine", ["legacy", "event"])
    def test_per_request_sums_equal_latency(self, engine):
        table, _ = profiled_run(engine)
        assert table.requests
        for request in table.requests:
            assert request.covered_s == \
                pytest.approx(request.latency_s, rel=1e-9, abs=1e-15)

    @pytest.mark.parametrize("engine", ["legacy", "event"])
    def test_table_means_match_run_stats(self, engine):
        table, result = profiled_run(engine)
        assert result.attribution is table
        assert table.mean_us("read") == \
            pytest.approx(result.read_mean_us, rel=1e-9)
        assert table.mean_us("write") == \
            pytest.approx(result.write_mean_us, rel=1e-9)
        assert table.n_requests("read") + table.n_requests("write") \
            == result.n_measured

    def test_event_engine_attributes_queue_waits_per_station(self):
        # Drive hard enough that requests actually queue: the pooled
        # wait the queueing summary measured must reappear in the
        # table, attributed to real device stations.
        workload = SysBenchWorkload(scale=0.05, n_requests=500, seed=3)
        system = make_system("icash", workload)
        profiler = Profiler()
        result = run_benchmark(
            workload, system, engine="event", profiler=profiler,
            warmup_fraction=0.0,
            load=OpenLoopLoad(2e6, distribution="constant", seed=5))
        waits = [
            (device, phase, dur)
            for request in profiler.table.requests
            for device, phase, dur in request.items
            if phase == "queue_wait"]
        assert waits, "saturating load produced no queue waits"
        assert all(device in ("dram", "ssd", "hdd", "nvram", "raid0")
                   for device, _p, _d in waits)
        total_wait_us = sum(dur for _d, _p, dur in waits) * 1e6
        summary_wait_us = result.queueing.wait_mean_us \
            * result.n_measured
        assert total_wait_us == pytest.approx(summary_wait_us, rel=1e-6)

    def test_legacy_profiler_keeps_downstream_tracer_intact(self):
        # The legacy runner interposes the engine's capture tracer,
        # which forwards background spans immediately but replays a
        # request's foreground spans at completion — so event *order*
        # may differ from a directly-attached tracer, while the event
        # multiset and every per-request breakdown must not.
        from repro.sim.trace import phase_breakdown

        workload = SysBenchWorkload(scale=0.05, n_requests=300, seed=9)
        plain_tracer = RingBufferTracer()
        run_benchmark(workload, make_system("icash", workload),
                      tracer=plain_tracer)
        workload = SysBenchWorkload(scale=0.05, n_requests=300, seed=9)
        both_tracer = RingBufferTracer()
        run_benchmark(workload, make_system("icash", workload),
                      tracer=both_tracer, profiler=Profiler())
        assert sorted((e.name, e.dur) for e in both_tracer.events) == \
            sorted((e.name, e.dur) for e in plain_tracer.events)
        for op in ("read", "write"):
            with_prof = phase_breakdown(both_tracer.events, op=op)
            without = phase_breakdown(plain_tracer.events, op=op)
            assert with_prof.phases == pytest.approx(without.phases)
            assert with_prof.total_s == pytest.approx(without.total_s)

    def test_profiler_excludes_warmup(self):
        table, result = profiled_run("event", warmup_fraction=0.5)
        assert table.latency("read").count + \
            table.latency("write").count == result.n_measured
        assert result.n_measured < result.n_requests


class TestProfileTrace:
    def test_trace_attribution_matches_breakdown(self):
        workload = SysBenchWorkload(scale=0.05, n_requests=400)
        system = make_system("icash", workload)
        tracer = RingBufferTracer()
        result = run_benchmark(workload, system, tracer=tracer)
        table = profile_trace(tracer.events)
        # The tracer covers the whole stream (no warmup cut), so
        # reconcile against the system's full stats instead.
        assert table.mean_us("read") == \
            pytest.approx(system.stats.latency("read").mean_us,
                          rel=1e-9)
        assert result.n_requests == \
            table.n_requests("read") + table.n_requests("write")

    def test_queue_spans_pool_under_queue_wait(self):
        tracer = RingBufferTracer()
        tracer.begin_request("read", 1, 1)
        tracer.span("queue", 5e-6)
        tracer.span("ssd_read", 10e-6)
        tracer.end_request(15e-6)
        table = profile_trace(tracer.events)
        rows = {(r.device, r.phase) for r in table.rows("read")}
        assert ("queue", "wait") in rows
        assert ("ssd", "read") in rows


class TestFoldedStacks:
    def make_tracer(self):
        tracer = RingBufferTracer()
        tracer.begin_request("read", 1, 1)
        tracer.span("ssd_read", 10e-6)
        tracer.span("delta_decode", 4e-6)
        tracer.end_request(16e-6)  # 2us uninstrumented residual
        tracer.begin_background("flush")
        tracer.span("hdd_log_append", 30e-6)
        tracer.end_background(extra_s=5e-6)
        return tracer

    def test_request_stacks_and_residual(self):
        stacks = fold_stacks(self.make_tracer().events)
        assert stacks["read;ssd;read"] == pytest.approx(10e-6)
        assert stacks["read;cpu;delta_decode"] == pytest.approx(4e-6)
        assert stacks["read;host;other"] == pytest.approx(2e-6)

    def test_background_nesting_preserved_with_self_time(self):
        stacks = fold_stacks(self.make_tracer().events)
        assert stacks["background;flush;hdd;log_append"] == \
            pytest.approx(30e-6)
        # The enclosing flush span keeps only its self time (extra_s).
        assert stacks["background;flush"] == pytest.approx(5e-6)

    def test_fold_conserves_total_time(self):
        tracer = self.make_tracer()
        stacks = fold_stacks(tracer.events)
        spans = sum(e.dur for e in tracer.events
                    if e.name != "request_start" and e.dur > 0.0)
        residual = 2e-6  # request latency not covered by child spans
        # The named flush section overlaps its children, so self-time
        # folding must count its extra_s exactly once.
        assert sum(stacks.values()) == pytest.approx(spans + residual
                                                     - 30e-6)

    def test_export_folded_format(self, tmp_path):
        path = tmp_path / "flame.folded"
        lines = export_folded(self.make_tracer().events, str(path))
        text = path.read_text()
        assert lines == len(text.strip().splitlines())
        for line in text.strip().splitlines():
            key, _, value = line.rpartition(" ")
            assert key and int(value) >= 1

    def test_submicrosecond_stacks_dropped(self):
        tracer = RingBufferTracer()
        tracer.begin_request("read", 1, 1)
        tracer.span("ssd_read", 4e-7)
        tracer.end_request(4e-7)
        handle = io.StringIO()
        assert export_folded(tracer.events, handle) == 0


class TestBenchHarness:
    def small_document(self, seed=2011):
        case = bench.BenchCase(case="sysbench-icash-legacy",
                               workload="sysbench", system="icash",
                               engine="legacy", seed=seed,
                               n_requests=300, scale=0.05)
        return {
            "schema_version": bench.BENCH_SCHEMA_VERSION,
            "suite": "quick",
            "cases": [bench.case_record(case, bench.run_case(case))],
        }

    def test_case_record_shape(self):
        document = self.small_document()
        (record,) = document["cases"]
        assert set(bench.METRIC_POLICY) <= set(record["metrics"])
        assert record["noise"]["read"]["n"] > 0
        assert record["attribution"], "attribution rows missing"
        json.dumps(document)  # JSON-serialisable end to end

    def test_self_compare_reports_zero_regressions(self):
        document = self.small_document()
        deltas = bench.compare(document, document)
        assert deltas
        assert bench.regressions(deltas) == []
        assert "0 regression(s)" in bench.render_compare(deltas)

    def test_determinism_across_runs(self):
        first = self.small_document()
        second = self.small_document()
        assert first["cases"][0]["metrics"] == \
            second["cases"][0]["metrics"]

    def test_compare_flags_out_of_tolerance_regression(self):
        document = self.small_document()
        worse = json.loads(json.dumps(document))
        worse["cases"][0]["metrics"]["read_mean_us"] *= 2.0
        worse["cases"][0]["metrics"]["transactions_per_s"] *= 0.5
        deltas = bench.compare(document, worse)
        bad = {d.metric for d in bench.regressions(deltas)}
        assert bad == {"read_mean_us", "transactions_per_s"}
        assert "REGRESSION" in bench.render_compare(deltas)
        # The reverse direction is an improvement, not a regression.
        assert bench.regressions(bench.compare(worse, document)) == []

    def test_tolerance_uses_baseline_noise(self):
        noise = {"read": {"std_us": 100.0, "n": 4}}
        rel_only = bench._tolerance("read_mean_us", 10.0, {})
        with_noise = bench._tolerance("read_mean_us", 10.0, noise)
        assert rel_only == pytest.approx(0.5)
        assert with_noise == pytest.approx(bench.NOISE_Z * 50.0)

    def test_write_and_load_bench_naming(self, tmp_path):
        document = {"schema_version": bench.BENCH_SCHEMA_VERSION,
                    "suite": "quick", "cases": []}
        first = bench.write_bench(document, str(tmp_path))
        second = bench.write_bench(document, str(tmp_path))
        assert first.endswith("BENCH_1.json")
        assert second.endswith("BENCH_2.json")
        assert bench.load_bench(first)["suite"] == "quick"

    def test_load_bench_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"schema_version": 999,
                                    "cases": []}))
        with pytest.raises(ValueError, match="schema"):
            bench.load_bench(str(path))

    def test_unmatched_cases_skipped(self):
        document = self.small_document()
        other = {"schema_version": bench.BENCH_SCHEMA_VERSION,
                 "suite": "quick", "cases": []}
        assert bench.compare(document, other) == []


class TestCLI:
    def test_critpath_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        folded = tmp_path / "flame.folded"
        code = main(["critpath", "--workload", "sysbench",
                     "--requests", "400", "--engine", "event",
                     "--folded", str(folded)])
        assert code == 0
        out = capsys.readouterr().out
        assert "read critical path" in out
        assert "blame:" in out
        assert "[ok]" in out and "MISMATCH" not in out
        assert folded.exists()
        assert any(line.startswith("read;")
                   for line in folded.read_text().splitlines())

    def test_critpath_legacy_engine(self, capsys):
        from repro.cli import main

        code = main(["critpath", "--workload", "sysbench",
                     "--requests", "300", "--engine", "legacy"])
        assert code == 0
        assert "legacy engine" in capsys.readouterr().out

    def test_critpath_json_output(self, capsys):
        import json

        from repro.cli import main

        code = main(["critpath", "--workload", "sysbench",
                     "--requests", "400", "--engine", "event",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)  # pure JSON on stdout, nothing else
        assert doc["consistent"] is True
        assert doc["queueing"] is not None
        assert {"op", "device", "phase"} <= set(doc["attribution"][0])
        for check in doc["consistency"]:
            assert check["ok"]

    def test_bench_subcommand_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "--quick", "--out-dir", str(tmp_path)])
        assert code == 0
        produced = tmp_path / "BENCH_1.json"
        assert produced.exists()
        # --against skips re-running: a self-compare must be clean.
        code = main(["bench", "--compare", str(produced),
                     "--against", str(produced)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_bench_compare_exits_nonzero_on_regression(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        code = main(["bench", "--quick", "--out-dir", str(tmp_path)])
        assert code == 0
        baseline_path = tmp_path / "BENCH_1.json"
        worse = json.loads(baseline_path.read_text())
        for record in worse["cases"]:
            record["metrics"]["read_mean_us"] *= 3.0
        worse_path = tmp_path / "WORSE.json"
        worse_path.write_text(json.dumps(worse))
        code = main(["bench", "--compare", str(baseline_path),
                     "--against", str(worse_path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_against_requires_compare(self, capsys):
        from repro.cli import main

        assert main(["bench", "--against", "X.json"]) == 2


class TestLatencyStatsVariance:
    def test_variance_and_std(self):
        from repro.sim.stats import LatencyStats

        stats = LatencyStats()
        assert stats.variance == 0.0 and stats.std == 0.0
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.record(value)
        assert stats.variance == pytest.approx(4.0)
        assert stats.std == pytest.approx(2.0)
        assert stats.std_us == pytest.approx(2e6)

    def test_variance_survives_merge(self):
        from repro.sim.stats import LatencyStats

        left, right, pooled = (LatencyStats() for _ in range(3))
        for value in (1.0, 2.0, 3.0):
            left.record(value)
            pooled.record(value)
        for value in (10.0, 20.0):
            right.record(value)
            pooled.record(value)
        left.merge(right)
        assert left.variance == pytest.approx(pooled.variance)

    def test_identical_samples_never_negative(self):
        from repro.sim.stats import LatencyStats

        stats = LatencyStats()
        for _ in range(100):
            stats.record(0.123456789)
        assert stats.variance >= 0.0


class TestDocumentationParity:
    def test_bench_metric_table_matches_policy(self):
        import re
        from pathlib import Path

        docs = (Path(__file__).resolve().parents[1]
                / "docs" / "OBSERVABILITY.md")
        text = docs.read_text(encoding="utf-8")
        documented = {
            name: direction
            for name, direction in re.findall(
                r"^\| `(\w+)` \| (higher|lower) \|", text, re.MULTILINE)}
        policy = {name: direction
                  for name, (direction, _, _) in
                  bench.METRIC_POLICY.items()}
        assert documented == policy, (
            f"docs/OBSERVABILITY.md drifted from METRIC_POLICY: "
            f"undocumented={sorted(set(policy) - set(documented))}, "
            f"stale={sorted(set(documented) - set(policy))}")

    def test_bench_tolerances_documented(self):
        import re
        from pathlib import Path

        docs = (Path(__file__).resolve().parents[1]
                / "docs" / "OBSERVABILITY.md")
        text = docs.read_text(encoding="utf-8")
        rows = dict(re.findall(
            r"^\| `(\w+)` \| (?:higher|lower) \| ([0-9.]+) \|",
            text, re.MULTILINE))
        for name, (_, rel_tol, _) in bench.METRIC_POLICY.items():
            assert float(rows[name]) == rel_tol, (
                f"documented rel_tol for {name} drifted")
