"""Tests for the content-locality analysis package, plotting helpers and
the validation harness plumbing."""

import numpy as np
import pytest

from repro.analysis import (analyze_dataset, analyze_writes,
                            reference_coverage)
from repro.core import ICASHController
from repro.experiments.plotting import ascii_bars, sparkline
from repro.sim.request import BLOCK_SIZE
from repro.sim.stats import LatencyStats
from repro.workloads import SysBenchWorkload

from conftest import make_block, make_dataset
from test_core_controller import family_dataset, small_config


class TestDatasetLocality:
    def test_random_dataset_has_no_locality(self):
        locality = analyze_dataset(make_dataset(64))
        assert locality.duplicate_ratio == 0.0
        assert locality.compressible_fraction() < 0.1

    def test_family_dataset_is_compressible(self):
        locality = analyze_dataset(family_dataset(128))
        assert locality.compressible_fraction() > 0.8
        assert locality.median_delta_bytes() < 1024

    def test_duplicates_counted(self):
        dataset = make_dataset(32)
        dataset[1] = dataset[0]
        dataset[2] = dataset[0]
        dataset[10] = dataset[9]
        locality = analyze_dataset(dataset)
        assert locality.duplicate_blocks == 5  # 3 + 2
        assert locality.duplicate_classes == 2
        assert locality.duplicate_ratio == pytest.approx(5 / 32)

    def test_sampling_bounds_work(self):
        locality = analyze_dataset(family_dataset(128), sample=16)
        assert len(locality.delta_sizes) == 16

    def test_summary_renders(self):
        text = analyze_dataset(family_dataset(64)).summary()
        assert "duplicates" in text and "delta-compressible" in text

    def test_workload_dataset_matches_paper_band(self):
        """The synthetic workloads must *exhibit* the content locality
        the paper's §2.2 claims for real systems."""
        workload = SysBenchWorkload(scale=0.1, n_requests=10)
        locality = analyze_dataset(workload.build_dataset(), sample=300)
        assert locality.compressible_fraction() > 0.7


class TestWriteLocality:
    def test_overwrite_fractions_measured(self):
        initial = make_dataset(16)
        from repro.sim.request import make_write
        new = initial[3].copy()
        new[0:409] = 0xFF  # ~10% of the block
        stream = [make_write(3, [new])]
        writes = analyze_writes(initial, stream)
        assert writes.n_overwrites == 1
        assert writes.change_fractions[0] == pytest.approx(0.1, abs=0.02)

    def test_workload_writes_sit_in_paper_band(self):
        workload = SysBenchWorkload(scale=0.1, n_requests=800)
        writes = analyze_writes(workload.build_dataset(),
                                workload.requests())
        assert writes.n_overwrites > 100
        assert 0.03 < writes.mean_change_fraction() < 0.25
        assert writes.within_paper_band() > 0.4

    def test_summary_renders(self):
        workload = SysBenchWorkload(scale=0.05, n_requests=200)
        text = analyze_writes(workload.build_dataset(),
                              workload.requests()).summary()
        assert "overwrites" in text


class TestReferenceCoverage:
    def test_ingested_element_shows_paper_structure(self):
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        report = reference_coverage(controller)
        assert report.reference_fraction < 0.25
        assert report.associate_fraction > 0.5
        assert report.space_saving > 0.5
        assert report.max_fanout() >= 2
        assert "references anchor" in report.summary()

    def test_fresh_element_has_no_coverage(self):
        controller = ICASHController(family_dataset(), small_config())
        report = reference_coverage(controller)
        assert report.n_associates == 0
        assert report.space_saving <= 0.0 + 1e-9


class TestPlotting:
    VALUES = {"fusion-io": 180.0, "raid0": 85.0, "icash": 190.0}

    def test_bars_render_every_row(self):
        text = ascii_bars(self.VALUES, ["fusion-io", "raid0", "icash"],
                          unit="tx/s")
        assert text.count("|") == 6
        assert "190.00 tx/s" in text

    def test_reference_series_renders(self):
        text = ascii_bars(self.VALUES, ["fusion-io", "icash"],
                          reference={"fusion-io": 18.0, "icash": 19.0})
        assert "paper" in text
        assert "░" in text

    def test_largest_value_gets_longest_bar(self):
        text = ascii_bars(self.VALUES, ["fusion-io", "raid0", "icash"])
        lengths = {line.split(" |")[0].strip():
                   line.split("|")[1].count("█")
                   for line in text.splitlines()}
        assert lengths["icash"] == max(lengths.values())

    def test_empty(self):
        assert ascii_bars({}, ["a"]) == "(no data)"

    def test_sparkline(self):
        line = sparkline([1.0, 2.0, 3.0, 2.0])
        assert len(line) == 4
        assert line[2] == "█"
        assert sparkline([]) == ""

    def test_figure_render_bars(self):
        from repro.experiments.figures import FigureResult
        result = FigureResult(
            "Figure X", "test", "tx/s", "higher",
            measured=dict(self.VALUES),
            paper={"fusion-io": 180, "raid0": 85, "icash": 190})
        text = result.render_bars()
        assert "Figure X" in text and "█" in text


class TestHistogram:
    def test_bimodal_latencies_visible(self):
        stats = LatencyStats()
        for _ in range(50):
            stats.record(10e-6)    # cache hits
        for _ in range(10):
            stats.record(10e-3)    # mechanical misses
        text = stats.histogram(bins=6)
        lines = text.splitlines()
        assert len(lines) == 6
        assert sum(int(line.rsplit(" ", 1)[1]) for line in lines) == 60

    def test_empty_histogram(self):
        assert LatencyStats().histogram() == "(no samples)"

    def test_single_value(self):
        stats = LatencyStats()
        stats.record(5e-6)
        assert "#" in stats.histogram()

    def test_bins_validated(self):
        stats = LatencyStats()
        stats.record(1e-6)
        with pytest.raises(ValueError):
            stats.histogram(bins=0)


class TestRebuildController:
    def test_restarted_element_serves_and_continues(self, rng):
        from repro.core.recovery import rebuild_controller
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        shadow = dataset.copy()
        for _ in range(300):
            lba = int(rng.integers(0, 256))
            content = shadow[lba].copy()
            content[0:50] = rng.integers(0, 256, 50)
            shadow[lba] = content
            controller.write(lba, [content])
        controller.flush()

        fresh = rebuild_controller(controller)
        # 1. It serves the pre-crash content...
        for lba in range(0, 256, 7):
            _, (out,) = fresh.read(lba)
            assert np.array_equal(out, shadow[lba])
        # 2. ...keeps the SSD population...
        assert fresh.reference_lbas == controller.reference_lbas
        assert fresh.spilled_lbas == controller.spilled_lbas
        # 3. ...and keeps operating normally afterwards.
        for _ in range(200):
            lba = int(rng.integers(0, 256))
            content = shadow[lba].copy()
            content[100:150] = rng.integers(0, 256, 50)
            shadow[lba] = content
            fresh.write(lba, [content])
        fresh.flush()
        for lba in range(0, 256, 11):
            _, (out,) = fresh.read(lba)
            assert np.array_equal(out, shadow[lba])

    def test_rebuild_starts_with_cold_ram(self):
        from repro.core.recovery import rebuild_controller
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        fresh = rebuild_controller(controller)
        assert fresh.segments.used_segments == 0
        assert fresh.cache.data_blocks_used == 0
        assert fresh.heatmap.total_accesses == 0
