"""Every `repro` subcommand's help text must name the doc section
that specifies it (the COMMAND_DOCS mapping), so `--help` never
drifts from the documentation tree again."""

import argparse
from pathlib import Path

import pytest

from repro.cli import COMMAND_DOCS, _build_parser

ROOT = Path(__file__).resolve().parents[1]


def subcommand_actions():
    parser = _build_parser()
    sub = next(a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction))
    return sub


class TestCommandDocs:
    def test_mapping_covers_exactly_the_registered_commands(self):
        sub = subcommand_actions()
        registered = {ca.dest for ca in sub._choices_actions}
        assert registered == set(COMMAND_DOCS)

    def test_every_help_names_its_doc(self):
        sub = subcommand_actions()
        helps = {ca.dest: ca.help for ca in sub._choices_actions}
        for command, doc in COMMAND_DOCS.items():
            assert doc in helps[command], (
                f"`repro {command}` help must cite {doc}; "
                f"got: {helps[command]!r}")

    @pytest.mark.parametrize("doc", sorted(set(COMMAND_DOCS.values())))
    def test_cited_docs_exist(self, doc):
        assert (ROOT / doc).is_file(), f"{doc} cited but missing"

    def test_chaos_is_registered_with_expected_flags(self):
        sub = subcommand_actions()
        chaos_parser = sub.choices["chaos"]
        flags = {opt for action in chaos_parser._actions
                 for opt in action.option_strings}
        assert {"--quick", "--requests", "--seed", "--scenario",
                "--out"} <= flags
