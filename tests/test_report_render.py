"""Golden snapshots for the ASCII renderers.

``repro.experiments.report`` and ``repro.experiments.plotting`` are the
presentation layer for every figure and bench summary; their output is
eyeballed against the paper's charts, so a silent formatting drift is a
real regression even when the numbers underneath are right.  Each test
pins the exact rendered text for a small fixed input.
"""

import textwrap

from repro.experiments.plotting import ascii_bars, sparkline
from repro.experiments.report import (comparison_table, normalize,
                                      render_shape_check, shape_check,
                                      shape_score, speedup_summary)

MEASURED = {"icash": 420.0, "fusion-io": 300.0, "raid0": 80.0}
PAPER = {"icash": 400.0, "fusion-io": 310.0, "raid0": 90.0}


def golden(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


class TestComparisonTable:
    def test_measured_and_paper_columns(self):
        rendered = comparison_table(
            "Figure 6: SysBench throughput",
            ["icash", "fusion-io", "raid0"], MEASURED, paper=PAPER,
            unit="tx/s")
        assert rendered == golden("""
            Figure 6: SysBench throughput
            =============================
            system             measured          paper   (higher is better)
            icash                 420.0          400.0  tx/s
            fusion-io             300.0          310.0  tx/s
            raid0                  80.0           90.0  tx/s
        """)

    def test_measured_only_with_missing_system(self):
        rendered = comparison_table(
            "Latency", ["icash", "lru"], {"icash": 1.25},
            unit="ms", better="lower", precision=2)
        assert rendered == golden("""
            Latency
            =======
            system             measured   (lower is better)
            icash                  1.25  ms
            lru                       -  ms
        """)


class TestShapeCheck:
    def test_orderings_and_score(self):
        checks = shape_check(MEASURED, PAPER)
        assert checks == {"icash>fusion-io": True,
                          "icash>raid0": True,
                          "fusion-io>raid0": True}
        assert shape_score(MEASURED, PAPER) == 1.0

    def test_render_flags_misses(self):
        flipped = dict(MEASURED, raid0=350.0)
        rendered = render_shape_check(flipped, PAPER)
        assert rendered == golden("""
            pairwise orderings preserved: 2/3
              MISS fusion-io>raid0
              ok  icash>fusion-io
              ok  icash>raid0
        """)


class TestHelpers:
    def test_normalize(self):
        normalized = normalize(MEASURED, baseline="fusion-io")
        assert normalized["fusion-io"] == 1.0
        assert normalized["icash"] == 1.4

    def test_speedup_both_conventions(self):
        up = speedup_summary(MEASURED, "raid0")
        assert up == {"icash_over_raid0": 5.25}
        down = speedup_summary({"icash": 2.0, "raid0": 5.0}, "raid0",
                               better="lower")
        assert down == {"icash_over_raid0": 2.5}


class TestAsciiBars:
    def test_measured_bars(self):
        rendered = ascii_bars(
            {"icash": 4.0, "raid0": 1.0}, ["icash", "raid0"],
            unit="tx/s", width=8)
        assert rendered == golden("""
            icash |████████| 4.00 tx/s
            raid0 |██      | 1.00 tx/s
        """)

    def test_reference_series_scales_independently(self):
        rendered = ascii_bars(
            {"icash": 4.0, "raid0": 2.0}, ["icash", "raid0"],
            width=4, reference={"icash": 100.0, "raid0": 25.0})
        assert rendered == golden("""
            icash |████| 4.00
            paper |░░░░| 100.00
            raid0 |██  | 2.00
            paper |░   | 25.00
        """)

    def test_empty_and_zero_rows(self):
        assert ascii_bars({}, ["icash"]) == "(no data)"
        rendered = ascii_bars({"icash": 0.0}, ["icash"], width=4)
        assert rendered == "icash |    | 0.00"


class TestSparkline:
    def test_shape(self):
        assert sparkline([0.0, 1.0, 2.0, 3.0]) == "▁▃▅█"
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        assert sparkline([]) == ""
