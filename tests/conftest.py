"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.request import BLOCK_SIZE


@pytest.fixture(autouse=True)
def _no_ambient_ledger(monkeypatch) -> None:
    """Keep tests from writing `.repro-ledger/` into the repo.

    The CLI records every experiment invocation by default
    (docs/LEDGER.md); tests that exercise recording construct a
    ``LedgerWriter`` on a tmp_path explicitly instead.
    """
    monkeypatch.setenv("REPRO_LEDGER", "0")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def random_block(rng) -> np.ndarray:
    return rng.integers(0, 256, size=BLOCK_SIZE, dtype=np.uint8)


def make_block(fill: int = 0) -> np.ndarray:
    """A 4 KB block with a constant fill byte."""
    return np.full(BLOCK_SIZE, fill, dtype=np.uint8)


def make_dataset(n_blocks: int, seed: int = 7) -> np.ndarray:
    """A random (n_blocks, 4096) uint8 dataset."""
    gen = np.random.default_rng(seed)
    return gen.integers(0, 256, size=(n_blocks, BLOCK_SIZE), dtype=np.uint8)


def mutate_block(block: np.ndarray, offsets, value: int = 0xAB) -> np.ndarray:
    out = block.copy()
    for offset in offsets:
        out[offset] = value
    return out
