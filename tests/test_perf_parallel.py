"""Hot-path optimisations and the parallel experiment fan-out.

Two families of guarantees live here:

* **golden equivalence** — every memoised/incremental/zero-copy fast
  path must produce byte-identical results to the direct
  implementation it replaced (signature cache vs. recompute,
  incremental similarity index vs. per-scan rebuild, view-based reads
  vs. copies);
* **parallel determinism** — fanning runs out across worker processes
  must be invisible in the results: byte-identical figures, sweeps and
  BENCH documents at any ``--jobs`` count, with only the
  machine-dependent ``host_wall_s`` allowed to differ.
"""

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ICashCache
from repro.core.heatmap import Heatmap
from repro.core.signatures import (SignatureScheme, _hash_signatures,
                                   _sampled_signatures, block_signatures,
                                   clear_signature_cache,
                                   signature_cache_stats)
from repro.core.similarity import SimilarityScanner
from repro.core.virtual_block import BlockKind, VirtualBlock
from repro.delta.encoder import apply_delta, encode_delta
from repro.delta.segments import SegmentPool
from repro.sim.request import BLOCK_SIZE


# ---------------------------------------------------------------------------
# Signature memoisation: golden equivalence with the direct computation
# ---------------------------------------------------------------------------


class TestSignatureCache:
    def test_sampled_matches_direct_implementation(self, rng):
        clear_signature_cache()
        for _ in range(20):
            block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            assert block_signatures(block) \
                == tuple(_sampled_signatures(block))

    def test_hash_matches_direct_implementation(self, rng):
        clear_signature_cache()
        for _ in range(10):
            block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            assert block_signatures(block, SignatureScheme.HASH) \
                == tuple(_hash_signatures(block))

    def test_cache_hit_returns_identical_tuple(self, rng):
        clear_signature_cache()
        block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        first = block_signatures(block)
        again = block_signatures(block.copy())  # same content, new array
        assert again == first
        stats = signature_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_schemes_do_not_collide_in_cache(self, rng):
        clear_signature_cache()
        block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        sampled = block_signatures(block, SignatureScheme.SAMPLED)
        hashed = block_signatures(block, SignatureScheme.HASH)
        assert sampled == tuple(_sampled_signatures(block))
        assert hashed == tuple(_hash_signatures(block))

    def test_mutated_block_gets_fresh_signatures(self, rng):
        """The cache keys on content, so mutation can never serve a
        stale entry."""
        clear_signature_cache()
        block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        before = block_signatures(block)
        block[0] = (int(block[0]) + 1) % 256  # offset 0 is sampled
        after = block_signatures(block)
        assert after != before
        assert after == tuple(_sampled_signatures(block))

    def test_readonly_view_input_accepted(self, rng):
        """Controller read paths hand out read-only views; signatures
        must compute on them without writeability."""
        clear_signature_cache()
        block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        view = block.view()
        view.flags.writeable = False
        assert block_signatures(view) == tuple(_sampled_signatures(block))

    def test_capacity_bounded(self, rng):
        from repro.core.signatures import SIGNATURE_CACHE_CAPACITY, \
            _signature_cache
        clear_signature_cache()
        block = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        for i in range(64):
            variant = block.copy()
            variant[0] = i % 256
            block_signatures(variant)
        assert len(_signature_cache) <= SIGNATURE_CACHE_CAPACITY


# ---------------------------------------------------------------------------
# Incremental similarity index: golden equivalence with the per-scan
# rebuild
# ---------------------------------------------------------------------------


def _make_cache():
    return ICashCache(max_virtual_blocks=1024,
                      data_ram_bytes=512 * BLOCK_SIZE,
                      segment_pool=SegmentPool(1 << 20))


def _make_scanner(heatmap, incremental):
    return SimilarityScanner(heatmap, min_signature_match=4,
                             delta_accept_bytes=2048,
                             scan_compare_s=2e-6, compress_s=15e-6,
                             use_incremental_index=incremental)


def _populate(cache, heatmap, blocks):
    for lba, content in blocks:
        vb = VirtualBlock(lba=lba, kind=BlockKind.INDEPENDENT)
        vb.signatures = block_signatures(content)
        cache.insert(vb)
        cache.attach_data(vb, content)
        heatmap.record(vb.signatures)


def _mixed_population(rng, n_families=4, family_size=6, n_loners=8):
    """Families of similar blocks plus dissimilar loners — exercises
    both association and mid-scan reference promotion."""
    blocks = []
    lba = 0
    for family in range(n_families):
        base = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        for member in range(family_size):
            content = base.copy()
            content[member * 16:member * 16 + 24] = family
            blocks.append((lba, content))
            lba += 1
    for _ in range(n_loners):
        blocks.append(
            (lba, rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)))
        lba += 1
    return blocks


def _scan_outcome(blocks, incremental):
    cache = _make_cache()
    heatmap = Heatmap()
    _populate(cache, heatmap, blocks)
    scanner = _make_scanner(heatmap, incremental)
    result = scanner.scan(cache, window=100, max_new_references=50,
                          content_fn=lambda vb: vb.data)
    return {
        "new_references": [vb.lba for vb in result.new_references],
        "associations": [(a.vb.lba, a.ref_lba, a.delta.runs)
                         for a in result.associations],
        "blocks_examined": result.blocks_examined,
        "comparisons": result.comparisons,
        "cpu_time": result.cpu_time,
    }


class TestIncrementalIndexEquivalence:
    def test_scan_identical_to_direct_index(self, rng):
        blocks = _mixed_population(rng)
        assert _scan_outcome(blocks, incremental=True) \
            == _scan_outcome(blocks, incremental=False)

    def test_equivalence_over_many_seeds(self):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            blocks = _mixed_population(
                rng, n_families=2 + seed % 3, family_size=3 + seed % 4,
                n_loners=seed * 2)
            assert _scan_outcome(blocks, incremental=True) \
                == _scan_outcome(blocks, incremental=False), \
                f"index paths diverged for seed {seed}"

    def test_repeat_scans_identical(self, rng):
        """The persistent index self-heals via per-scan sync, so a
        second scan over the same cache matches the direct path too."""
        blocks = _mixed_population(rng)
        cache_i, cache_d = _make_cache(), _make_cache()
        heat_i, heat_d = Heatmap(), Heatmap()
        _populate(cache_i, heat_i, blocks)
        _populate(cache_d, heat_d, blocks)
        scan_i = _make_scanner(heat_i, True)
        scan_d = _make_scanner(heat_d, False)
        for _ in range(3):
            result_i = scan_i.scan(cache_i, window=100,
                                   max_new_references=50,
                                   content_fn=lambda vb: vb.data)
            result_d = scan_d.scan(cache_d, window=100,
                                   max_new_references=50,
                                   content_fn=lambda vb: vb.data)
            assert [vb.lba for vb in result_i.new_references] \
                == [vb.lba for vb in result_d.new_references]
            assert [(a.vb.lba, a.ref_lba) for a in result_i.associations] \
                == [(a.vb.lba, a.ref_lba) for a in result_d.associations]
            assert result_i.comparisons == result_d.comparisons

    def test_retired_references_leave_index(self, rng):
        blocks = _mixed_population(rng, n_families=1, family_size=4,
                                   n_loners=0)
        cache = _make_cache()
        heatmap = Heatmap()
        _populate(cache, heatmap, blocks)
        scanner = _make_scanner(heatmap, True)
        scanner.scan(cache, window=100, max_new_references=50,
                     content_fn=lambda vb: vb.data)
        assert len(scanner.signature_index) > 0
        for lba, _ in blocks:
            scanner.note_retired(lba)
        assert len(scanner.signature_index) == 0


# ---------------------------------------------------------------------------
# Zero-copy delta path: round-trip under views, no aliasing corruption
# ---------------------------------------------------------------------------


def _readonly(arr):
    view = arr.view()
    view.flags.writeable = False
    return view


class TestZeroCopyDeltaProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_roundtrip_under_views(self, data):
        seed = data.draw(st.integers(0, 2**32 - 1))
        n_edits = data.draw(st.integers(0, 32))
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = reference.copy()
        for _ in range(n_edits):
            start = int(rng.integers(0, BLOCK_SIZE))
            length = int(rng.integers(1, 64))
            target[start:start + length] = rng.integers(0, 256)
        # Encode/apply through read-only views, as the controller's
        # zero-copy read path would hand them out.
        delta = encode_delta(_readonly(target), _readonly(reference))
        restored = apply_delta(delta, _readonly(reference))
        assert np.array_equal(restored, target)

    def test_no_aliasing_after_reference_mutation(self, rng):
        """apply_delta's output must own its bytes: mutating the
        reference array afterwards cannot corrupt an earlier result."""
        reference = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = reference.copy()
        target[100:130] = 7
        delta = encode_delta(target, reference)
        restored = apply_delta(delta, _readonly(reference))
        snapshot = restored.copy()
        reference[:] = 0  # clobber the source the view pointed at
        assert np.array_equal(restored, snapshot)

    def test_encode_does_not_mutate_inputs(self, rng):
        reference = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        ref_copy, tgt_copy = reference.copy(), target.copy()
        encode_delta(target, reference)
        assert np.array_equal(reference, ref_copy)
        assert np.array_equal(target, tgt_copy)


# ---------------------------------------------------------------------------
# Controller read views: stable content, fresh copy semantics preserved
# ---------------------------------------------------------------------------


class TestControllerReadViews:
    def test_reads_match_shadow_under_views(self):
        from repro.experiments.runner import run_benchmark
        from repro.experiments.systems import make_system
        from repro.workloads import SysBenchWorkload

        workload = SysBenchWorkload(scale=0.25, n_requests=600, seed=7)
        system = make_system("icash", workload)
        result = run_benchmark(workload, system, verify_reads=True)
        assert result.verified_reads > 0


# ---------------------------------------------------------------------------
# RunResult payloads: pickle round-trip is bit-identical
# ---------------------------------------------------------------------------


class TestRunResultPayload:
    @pytest.mark.parametrize("engine", ["legacy", "event"])
    def test_case_record_identical_after_roundtrip(self, engine):
        from repro.experiments import bench
        from repro.experiments.runner import RunResult

        case = bench.BenchCase(case=f"sysbench-icash-{engine}",
                               workload="sysbench", system="icash",
                               engine=engine, seed=2011, n_requests=300,
                               scale=0.05)
        original = bench.run_case(case)
        payload = pickle.loads(pickle.dumps(original.to_payload()))
        rebuilt = RunResult.from_payload(payload)
        assert json.dumps(bench.case_record(case, original),
                          sort_keys=True) \
            == json.dumps(bench.case_record(case, rebuilt),
                          sort_keys=True)

    def test_payload_is_plain_data(self):
        from repro.experiments import bench

        case = bench.QUICK_SUITE[0]
        payload = bench.run_case(case).to_payload()
        json.dumps(payload)  # no live simulator objects inside


# ---------------------------------------------------------------------------
# Parallel fan-out: determinism at any job count, serial fallback
# ---------------------------------------------------------------------------


def _strip_host_wall(document):
    stripped = json.loads(json.dumps(document))
    for case in stripped["cases"]:
        assert case["host_wall_s"] is None \
            or float(case["host_wall_s"]) >= 0.0
        case["host_wall_s"] = None
    return json.dumps(stripped, indent=2, sort_keys=True)


class TestParallelDeterminism:
    def test_run_specs_order_and_results_independent_of_jobs(self):
        from repro.experiments.parallel import RunSpec, run_specs

        specs = [RunSpec(workload="sysbench", system=system,
                         n_requests=300, scale=0.05)
                 for system in ("icash", "lru", "fusion-io")]
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert [o.parallel for o in serial] == [False] * 3
        assert all(o.parallel for o in parallel)
        for left, right in zip(serial, parallel):
            assert json.dumps(left.result.to_payload(), sort_keys=True) \
                == json.dumps(right.result.to_payload(), sort_keys=True)

    def test_quick_suite_byte_identical_across_job_counts(self):
        from repro.experiments import bench

        documents = {jobs: bench.run_suite(quick=True, jobs=jobs)
                     for jobs in (1, 2, 4)}
        baseline = _strip_host_wall(documents[1])
        assert _strip_host_wall(documents[2]) == baseline
        assert _strip_host_wall(documents[4]) == baseline
        for document in documents.values():
            for case in document["cases"]:
                assert case["host_wall_s"] > 0.0

    def test_spec_errors_propagate_in_both_modes(self):
        from repro.experiments.parallel import RunSpec, run_specs

        bad = [RunSpec(workload="no-such-workload", n_requests=10)]
        with pytest.raises(KeyError):
            run_specs(bad, jobs=1)
        with pytest.raises(KeyError):
            run_specs(bad, jobs=2)

    def test_sweep_points_identical_with_jobs(self):
        from repro.experiments.parallel import RunSpec
        from repro.experiments.sweeps import sweep_config
        from repro.workloads import SysBenchWorkload

        factory = lambda: SysBenchWorkload(n_requests=400)  # noqa: E731
        base = RunSpec(workload="sysbench", n_requests=400)
        serial = sweep_config(factory, "scan_interval", [200, 800])
        fanned = sweep_config(factory, "scan_interval", [200, 800],
                              jobs=2, base_spec=base)
        for left, right in zip(serial, fanned):
            assert left.value == right.value
            assert left.result.transactions_per_s \
                == right.result.transactions_per_s
            assert left.result.read_mean_us == right.result.read_mean_us


class TestFigureGridCache:
    def test_cache_key_covers_engine_and_warmup(self):
        from repro.experiments.figures import _grid_key

        key = _grid_key("sysbench", 500, 2011)
        assert "legacy" in key
        assert any(isinstance(part, float) for part in key)
        assert _grid_key("sysbench", 500, 2012) != key
        assert _grid_key("sysbench", 501, 2011) != key

    def test_prewarm_installs_exact_cells(self, monkeypatch):
        from repro.experiments import figures

        figures.clear_cache()
        ran = figures.prewarm(["figure6a"], n_requests=300, jobs=1)
        assert ran == 5  # one cell per architecture

        # The figure function must now be served from cache: a grid
        # re-run would mean the prewarm keys missed.
        def _fail(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("run_grid called despite prewarm")

        monkeypatch.setattr(figures, "run_grid", _fail)
        result = figures.figure6a(n_requests=300)
        assert set(result.measured) == set(result.paper)
        assert figures.prewarm(["figure6a"], n_requests=300) == 0
        figures.clear_cache()

    def test_different_requests_do_not_collide(self, monkeypatch):
        from repro.experiments import figures

        figures.clear_cache()
        figures.prewarm(["figure6a"], n_requests=300)

        def _fail(*args, **kwargs):
            raise AssertionError("cache collision across n_requests")

        monkeypatch.setattr(figures, "run_grid", _fail)
        with pytest.raises(AssertionError):
            figures.figure6a(n_requests=301)
        figures.clear_cache()
