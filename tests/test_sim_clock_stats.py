"""Unit tests for the virtual clock and the statistics collectors."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.stats import LatencyStats, StatsCollector


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.reset()
        assert clock.now == 0.0
        clock.reset(3.0)
        assert clock.now == 3.0


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.percentile(99) == 0.0
        assert stats.max == 0.0

    def test_mean_and_total(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.record(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.total == pytest.approx(6.0)
        assert stats.mean_us == pytest.approx(2.0e6)

    def test_percentile_nearest_rank(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.record(float(value))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(0) == 1.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1e-9)

    def test_merge_pools_samples(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)

    def test_min_max(self):
        stats = LatencyStats()
        for value in (5.0, 1.0, 3.0):
            stats.record(value)
        assert stats.min == 1.0
        assert stats.max == 5.0


class TestStatsCollector:
    def test_counters_start_at_zero(self):
        assert StatsCollector().count("anything") == 0

    def test_bump_and_read(self):
        stats = StatsCollector()
        stats.bump("reads")
        stats.bump("reads", 4)
        assert stats.count("reads") == 5
        assert stats.counters() == {"reads": 5}

    def test_latency_classes_are_independent(self):
        stats = StatsCollector()
        stats.record_latency("read", 1.0)
        stats.record_latency("write", 3.0)
        assert stats.latency("read").mean == 1.0
        assert stats.latency("write").mean == 3.0
        assert set(stats.latency_classes()) == {"read", "write"}

    def test_merge(self):
        a, b = StatsCollector(), StatsCollector()
        a.bump("ops", 2)
        b.bump("ops", 3)
        b.record_latency("read", 1.0)
        a.merge(b)
        assert a.count("ops") == 5
        assert a.latency("read").count == 1

    def test_summary_flattens(self):
        stats = StatsCollector()
        stats.bump("ops")
        stats.record_latency("read", 2e-6)
        summary = stats.summary()
        assert summary["ops"] == 1.0
        assert summary["read_mean_us"] == pytest.approx(2.0)
        assert summary["read_count"] == 1.0

    def test_format_table_mentions_counters(self):
        stats = StatsCollector()
        stats.bump("hits", 7)
        stats.record_latency("read", 1e-3)
        text = stats.format_table("title")
        assert "title" in text
        assert "hits" in text
        assert "read latency" in text
