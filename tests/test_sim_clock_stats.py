"""Unit tests for the virtual clock and the statistics collectors."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.stats import LatencyStats, StatsCollector


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.reset()
        assert clock.now == 0.0
        clock.reset(3.0)
        assert clock.now == 3.0


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.percentile(99) == 0.0
        assert stats.max == 0.0

    def test_mean_and_total(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.record(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.total == pytest.approx(6.0)
        assert stats.mean_us == pytest.approx(2.0e6)

    def test_percentile_nearest_rank(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.record(float(value))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(0) == 1.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1e-9)

    def test_merge_pools_samples(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)

    def test_min_max(self):
        stats = LatencyStats()
        for value in (5.0, 1.0, 3.0):
            stats.record(value)
        assert stats.min == 1.0
        assert stats.max == 5.0

    def test_min_max_streaming_no_rescan(self):
        # min/max are maintained on record(), not recomputed: mutating
        # the sample list behind the object's back must not change them.
        stats = LatencyStats()
        stats.record(2.0)
        stats.record(8.0)
        stats._samples.append(99.0)  # bypasses record() on purpose
        assert stats.max == 8.0
        assert stats.min == 2.0

    def test_min_max_survive_merge(self):
        a, b = LatencyStats(), LatencyStats()
        for value in (4.0, 6.0):
            a.record(value)
        for value in (1.0, 9.0):
            b.record(value)
        a.merge(b)
        assert a.min == 1.0
        assert a.max == 9.0
        # Merging an empty side changes nothing.
        a.merge(LatencyStats())
        assert (a.min, a.max) == (1.0, 9.0)

    def test_merge_into_empty_adopts_extrema(self):
        a, b = LatencyStats(), LatencyStats()
        b.record(0.5)
        a.merge(b)
        assert a.min == 0.5
        assert a.max == 0.5
        assert LatencyStats().min == 0.0  # empty stays at the 0.0 default


class TestStatsCollector:
    def test_counters_start_at_zero(self):
        assert StatsCollector().count("anything") == 0

    def test_bump_and_read(self):
        stats = StatsCollector()
        stats.bump("reads")
        stats.bump("reads", 4)
        assert stats.count("reads") == 5
        assert stats.counters() == {"reads": 5}

    def test_latency_classes_are_independent(self):
        stats = StatsCollector()
        stats.record_latency("read", 1.0)
        stats.record_latency("write", 3.0)
        assert stats.latency("read").mean == 1.0
        assert stats.latency("write").mean == 3.0
        assert set(stats.latency_classes()) == {"read", "write"}

    def test_merge(self):
        a, b = StatsCollector(), StatsCollector()
        a.bump("ops", 2)
        b.bump("ops", 3)
        b.record_latency("read", 1.0)
        a.merge(b)
        assert a.count("ops") == 5
        assert a.latency("read").count == 1

    def test_merge_preserves_percentile_correctness(self):
        # The merged collector must report the same percentiles as one
        # collector that saw every sample directly — including when the
        # sorted-order cache was already warm on both sides.
        a, b, pooled = StatsCollector(), StatsCollector(), StatsCollector()
        a_samples = [float(v) for v in (9, 1, 7, 3, 5)]
        b_samples = [float(v) for v in (2, 8, 4, 6, 10, 12)]
        for value in a_samples:
            a.record_latency("read", value)
            pooled.record_latency("read", value)
        for value in b_samples:
            b.record_latency("read", value)
            pooled.record_latency("read", value)
        # Warm both sort caches so merge must invalidate, not reuse.
        a.latency("read").percentile(50)
        b.latency("read").percentile(50)
        a.merge(b)
        merged = a.latency("read")
        reference = pooled.latency("read")
        for p in (0, 10, 25, 50, 75, 90, 99, 100):
            assert merged.percentile(p) == reference.percentile(p), p
        assert merged.min == reference.min == 1.0
        assert merged.max == reference.max == 12.0
        assert merged.mean == pytest.approx(reference.mean)

    def test_merge_then_record_keeps_percentiles_exact(self):
        # record() after merge() must rebuild/patch the sorted cache
        # correctly (merge invalidates it; insort keeps it warm after).
        a, b = StatsCollector(), StatsCollector()
        for value in (3.0, 1.0):
            a.record_latency("read", value)
        b.record_latency("read", 2.0)
        a.merge(b)
        assert a.latency("read").percentile(50) == 2.0
        a.record_latency("read", 0.5)
        assert a.latency("read").percentile(50) == 1.0
        assert a.latency("read").percentile(100) == 3.0
        assert a.latency("read").min == 0.5

    def test_summary_flattens(self):
        stats = StatsCollector()
        stats.bump("ops")
        stats.record_latency("read", 2e-6)
        summary = stats.summary()
        assert summary["ops"] == 1.0
        assert summary["read_mean_us"] == pytest.approx(2.0)
        assert summary["read_count"] == 1.0

    def test_format_table_mentions_counters(self):
        stats = StatsCollector()
        stats.bump("hits", 7)
        stats.record_latency("read", 1e-3)
        text = stats.format_table("title")
        assert "title" in text
        assert "hits" in text
        assert "read latency" in text
