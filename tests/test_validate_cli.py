"""Tests for the validation harness and the new CLI commands.

The full ``validate()`` run is a benchmark-suite-sized job; these tests
exercise its aggregation logic against stubbed figures, and the CLI
paths against small real runs.
"""

import pytest

from repro.cli import main as cli_main
from repro.experiments import validate as validate_module
from repro.experiments.figures import FigureResult
from repro.experiments.validate import (Claim, ValidationSummary,
                                        _headline_claims)


def stub_figure(name: str, measured, paper) -> FigureResult:
    return FigureResult(name, name, "x", "higher", measured, paper)


def stub_results(icash_wins: bool = True):
    """A full figure-result set with controllable outcomes."""
    win = {"fusion-io": 10.0, "raid0": 4.0, "dedup": 6.0,
           "lru": 7.0, "icash": 12.0 if icash_wins else 9.0}
    lose_time = {"fusion-io": 5.0, "raid0": 14.0, "dedup": 12.0,
                 "lru": 7.0, "icash": 2.6 if icash_wins else 9.0}
    loadsim = {"fusion-io": 1800.0, "raid0": 5340.0, "dedup": 3259.0,
               "lru": 3002.0, "icash": 2263.0}
    rubis = {"fusion-io": 84.0, "raid0": 48.0, "dedup": 59.0,
             "lru": 73.0, "icash": 80.0}
    vms = {"fusion-io": 1.0, "raid0": 0.4, "dedup": 0.5,
           "lru": 0.4, "icash": 2.8 if icash_wins else 0.5}
    hadoop = {"fusion-io": 24.0, "raid0": 32.0, "dedup": 26.0,
              "lru": 25.0, "icash": 18.0 if icash_wins else 40.0}
    paper = dict(win)
    return {
        "figure6a": stub_figure("figure6a", win, paper),
        "figure10a": stub_figure("figure10a", win, paper),
        "figure11": stub_figure("figure11", lose_time, lose_time),
        "figure12": stub_figure("figure12", loadsim, loadsim),
        "figure14": stub_figure("figure14", rubis, rubis),
        "figure15": stub_figure("figure15", vms, vms),
        "figure8a": stub_figure("figure8a", hadoop, hadoop),
    }


class TestHeadlineClaims:
    def test_winning_run_holds_all_claims(self):
        claims = _headline_claims(stub_results(icash_wins=True))
        assert all(claim.holds for claim in claims)

    def test_losing_run_fails_claims(self):
        claims = _headline_claims(stub_results(icash_wins=False))
        assert not all(claim.holds for claim in claims)

    def test_missing_figure_marks_claim_failed(self):
        results = stub_results()
        results["figure15"] = stub_figure("figure15", {}, {})
        claims = _headline_claims(results)
        vm_claims = [c for c in claims if "VMs" in c.description]
        assert vm_claims and not any(c.holds for c in vm_claims)


class TestValidationSummary:
    def test_render_and_scores(self):
        summary = ValidationSummary(
            shape_scores={"figure6a": 1.0, "figure12": 0.8},
            claims=[Claim("a", True), Claim("b", False)])
        assert summary.mean_shape_score == pytest.approx(0.9)
        assert summary.claims_held == 1
        text = summary.render()
        assert "figure6a" in text and "MISS b" in text

    def test_validate_uses_all_figures(self, monkeypatch):
        calls = []

        def fake_figure(name):
            def runner(**kwargs):
                calls.append(name)
                return stub_results()["figure6a"]
            return runner

        fake_registry = {name: fake_figure(name)
                         for name in ("figure6a", "figure10a", "figure11",
                                      "figure12", "figure14", "figure15",
                                      "figure16", "figure8a")}
        monkeypatch.setattr(validate_module.figures_module,
                            "ALL_FIGURES", fake_registry)
        summary = validate_module.validate()
        assert sorted(calls) == sorted(fake_registry)
        assert set(summary.shape_scores) == set(fake_registry)


class TestNewCLICommands:
    def test_analyze_command(self, capsys):
        assert cli_main(["analyze", "tpcc", "--requests", "400"]) == 0
        out = capsys.readouterr().out
        assert "delta-compressible" in out
        assert "5-20% band" in out

    def test_validate_command_uses_stub(self, monkeypatch, capsys):
        def fake_validate(n_requests=None):
            return ValidationSummary(shape_scores={"figure6a": 1.0},
                                     claims=[Claim("ok", True)])
        monkeypatch.setattr("repro.experiments.validate.validate",
                            fake_validate)
        assert cli_main(["validate"]) == 0
        assert "headline claims: 1/1" in capsys.readouterr().out
