"""Recovery edge cases the baseline failure-injection tests miss:
power loss between a delta-log wrap and the next flush, corruption on
a reference block with live deltas, a double fault (HDD death during
SSD wear-out degraded mode), and determinism of full chaos runs."""

import numpy as np

from repro.core import ICASHController
from repro.core.recovery import recover
from repro.experiments import chaos
from repro.experiments.systems import make_system
from repro.sim.engine import EventEngine
from repro.sim.faults import (FaultInjector, FaultPlan, FaultSpec,
                              scrub_references)
from repro.sim.load import OpenLoopLoad
from repro.workloads import SysBenchWorkload

from test_core_controller import family_dataset, small_config


class TestPowerLossBetweenWrapAndFlush:
    def test_loss_window_bounded_after_wrap(self):
        """Crash with a freshly wrapped log and dirty deltas pending:
        every block recovers to current or last-flushed content, and
        the stale set is bounded by the dirty window."""
        dataset = family_dataset()
        controller = ICASHController(
            dataset.copy(),
            small_config(log_blocks=8, flush_interval=100_000,
                         flush_dirty_count=100_000))
        controller.ingest()
        shadow = dataset.copy()
        flushed = dataset.copy()
        gen = np.random.default_rng(11)

        def burst(n: int) -> None:
            for _ in range(n):
                lba = int(gen.integers(0, shadow.shape[0]))
                content = shadow[lba].copy()
                content[0:48] = gen.integers(0, 256, 48)
                shadow[lba] = content
                controller.write(lba, [content])

        rounds = 0
        while controller.log.wrap_count == 0 and rounds < 60:
            burst(30)
            controller.flush()
            flushed = shadow.copy()
            rounds += 1
        assert controller.log.wrap_count >= 1, \
            "the tiny log never wrapped"
        # New deltas after the wrap, crash before the next flush.
        burst(25)
        assert controller.dirty_delta_count > 0

        image = recover(controller)
        stale = 0
        for lba in range(shadow.shape[0]):
            recovered = image.read(lba)
            if np.array_equal(recovered, shadow[lba]):
                continue
            assert np.array_equal(recovered, flushed[lba]), \
                f"block {lba} recovered to garbage"
            stale += 1
        assert stale <= controller.dirty_delta_count

    def test_loss_window_zero_when_crash_lands_on_flush(self):
        """Same wrapped-log state, but the flush won the race: replay
        is byte-exact."""
        dataset = family_dataset()
        controller = ICASHController(
            dataset.copy(),
            small_config(log_blocks=8, flush_interval=100_000,
                         flush_dirty_count=100_000))
        controller.ingest()
        shadow = dataset.copy()
        gen = np.random.default_rng(13)
        rounds = 0
        while controller.log.wrap_count == 0 and rounds < 60:
            for _ in range(30):
                lba = int(gen.integers(0, shadow.shape[0]))
                content = shadow[lba].copy()
                content[0:48] = gen.integers(0, 256, 48)
                shadow[lba] = content
                controller.write(lba, [content])
            controller.flush()
            rounds += 1
        assert controller.log.wrap_count >= 1
        assert controller.dirty_delta_count == 0
        image = recover(controller)
        for lba in range(shadow.shape[0]):
            assert np.array_equal(image.read(lba), shadow[lba])


class TestReferenceCorruptionWithLiveDeltas:
    def test_scrub_detects_and_dependents_survive_restore(self):
        dataset = family_dataset()
        controller = ICASHController(dataset.copy(), small_config())
        controller.ingest()
        snapshot = controller.delta_map_snapshot()
        assert snapshot, "ingest should have packed deltas"
        ref = next(r for (r, _slot) in snapshot.values()
                   if controller.ssd_block_content(r) is not None)
        dependents = [lba for lba, (r, _s) in snapshot.items()
                      if r == ref]
        assert dependents, "picked a reference without live deltas"

        content = controller.ssd_block_content(ref)
        saved = content[:64].copy()
        content[:64] ^= 0xFF
        flagged = scrub_references(controller)
        assert ref in flagged
        content[:64] = saved
        assert scrub_references(controller) == []
        # With the reference restored, every dependent still recovers
        # byte-exact through the corrupted-then-repaired copy.
        image = recover(controller)
        for lba in dependents[:5]:
            assert np.array_equal(image.read(lba), dataset[lba])

    def test_corrupted_reference_poisons_recovery_until_detected(self):
        """The failure the scrub exists to prevent: recovery applied
        to a corrupted reference yields wrong bytes for at least one
        dependent."""
        dataset = family_dataset()
        controller = ICASHController(dataset.copy(), small_config())
        controller.ingest()
        snapshot = controller.delta_map_snapshot()
        ref = next(r for (r, _slot) in snapshot.values()
                   if controller.ssd_block_content(r) is not None)
        dependents = [lba for lba, (r, _s) in snapshot.items()
                      if r == ref]
        content = controller.ssd_block_content(ref)
        saved = content[:64].copy()
        content[:64] ^= 0xFF
        try:
            image = recover(controller)
            poisoned = any(
                not np.array_equal(image.read(lba), dataset[lba])
                for lba in dependents)
            assert poisoned, ("corruption on a live reference should "
                              "surface in recovered dependents")
            assert ref in scrub_references(controller)
        finally:
            content[:64] = saved


class TestDoubleFault:
    def test_hdd_dies_during_ssd_wearout_degraded_mode(self):
        workload = SysBenchWorkload(n_requests=600)
        system = make_system("icash", workload)
        system.ingest()
        engine = EventEngine(system, keep_event_log=True)
        plan = FaultPlan(
            [FaultSpec("ssd_wearout", at_request=100,
                       wear_fraction=1.0),
             FaultSpec("hdd_failure", at_request=105,
                       rebuild_blocks=4096)], seed=5)
        injector = FaultInjector(plan, system, engine)
        engine.attach_faults(injector)
        engine.run(workload, OpenLoopLoad(2000.0, seed=3))
        wear, hdd = injector.report().outcomes
        assert wear.kind == "ssd_wearout"
        assert hdd.kind == "hdd_failure"
        assert not wear.skipped and not hdd.skipped
        # The second fault fired while the first window was open, and
        # both windows still closed.
        assert hdd.t_injected_s < wear.t_recovered_s
        assert wear.t_recovered_s is not None
        assert hdd.t_recovered_s is not None
        # Both stations drained: independent recoveries, no deadlock.
        assert all(s.backlog_s == 0.0 and s.bg_active == 0
                   for s in engine.stations.values())

    def test_double_fault_is_deterministic(self):
        def run_once():
            workload = SysBenchWorkload(n_requests=400)
            system = make_system("icash", workload)
            system.ingest()
            engine = EventEngine(system, keep_event_log=True)
            plan = FaultPlan(
                [FaultSpec("ssd_wearout", at_request=80,
                           wear_fraction=1.0),
                 FaultSpec("hdd_failure", at_request=85)], seed=21)
            injector = FaultInjector(plan, system, engine)
            engine.attach_faults(injector)
            engine.run(workload, OpenLoopLoad(2000.0, seed=4))
            return engine.event_log

        assert run_once() == run_once()


class TestChaosDeterminism:
    def test_same_seed_same_verdict(self):
        scenario = next(s for s in chaos.SCENARIOS
                        if s.scenario_id == "powerloss-sysbench")
        a = chaos.run_scenario(scenario, seed=5, n_requests=500)
        b = chaos.run_scenario(scenario, seed=5, n_requests=500)
        assert a.to_payload() == b.to_payload()

    def test_jsonl_export_byte_identical(self, tmp_path):
        scenarios = [s for s in chaos.quick_scenarios()
                     if s.fault_kind in ("ssd_wearout",
                                         "silent_corruption")]
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        chaos.export_chaos_jsonl(
            chaos.run_matrix(scenarios, seed=3, n_requests=400), path_a)
        chaos.export_chaos_jsonl(
            chaos.run_matrix(scenarios, seed=3, n_requests=400), path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
        assert len(path_a.read_text().splitlines()) == \
            1 + len(scenarios)
