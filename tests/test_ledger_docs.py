"""docs/LEDGER.md is a contract: the provenance-field table, the
subcommand table, the anomaly-detector constants and the schema
version statement must match `repro.ledger` / `repro.cli` exactly."""

import re
from pathlib import Path

import pytest

from repro import ledger
from repro.cli import LEDGER_SUBCOMMANDS
from repro.experiments.bench import BENCH_SCHEMA_VERSION, NOISE_Z

DOC = Path(__file__).resolve().parents[1] / "docs" / "LEDGER.md"


@pytest.fixture(scope="module")
def doc_text() -> str:
    return DOC.read_text()


class TestSchemaVersionParity:
    def test_heading_tracks_code_version(self, doc_text):
        heading = re.search(r"^## Row layout \(ledger schema version "
                            r"(\d+)\)$", doc_text, re.MULTILINE)
        assert heading is not None
        assert int(heading.group(1)) == ledger.LEDGER_SCHEMA_VERSION

    def test_schema_map_literal_matches(self, doc_text):
        expected = ('`{"ledger": %d, "bench": %d}`'
                    % (ledger.LEDGER_SCHEMA_VERSION, BENCH_SCHEMA_VERSION))
        assert expected in doc_text
        assert ledger.schema_versions() == {
            "ledger": ledger.LEDGER_SCHEMA_VERSION,
            "bench": BENCH_SCHEMA_VERSION,
        }


class TestFieldTableParity:
    def rows(self, doc_text, section):
        text = doc_text.split(section, 1)[1].split("\n## ", 1)[0]
        return set(re.findall(r"^\| `(\w+)` \|", text, re.MULTILINE))

    def test_provenance_fields_all_documented(self, doc_text):
        documented = self.rows(doc_text, "### Provenance fields")
        assert documented == set(ledger.PROVENANCE_FIELDS)

    def test_spec_fields_all_named(self, doc_text):
        section = doc_text.split("### Spec fields", 1)[1]
        section = section.split("### ", 1)[0]
        for field in ledger.SPEC_FIELDS:
            assert f"`{field}`" in section, f"spec field {field!r} undocumented"

    def test_filter_keys_all_named(self, doc_text):
        section = doc_text.split("## Subcommands", 1)[1]
        section = section.split("\n## ", 1)[0]
        for key in ledger.FILTER_KEYS:
            assert f"`{key}`" in section, f"filter key {key!r} undocumented"


class TestSubcommandParity:
    def test_every_subcommand_has_a_table_row(self, doc_text):
        documented = set(re.findall(r"^\| `repro ledger (\w+)` \|",
                                    doc_text, re.MULTILINE))
        assert documented == set(LEDGER_SUBCOMMANDS)


class TestAnomalyConstantParity:
    CLAIMS = (
        (r"`K = (\d+)` \(`DEFAULT_WINDOW`", "DEFAULT_WINDOW"),
        (r"at least `(\d+)` \(`MIN_HISTORY`\)", "MIN_HISTORY"),
        (r"`([\d.]+)` × MAD \(`MAD_SCALE`", "MAD_SCALE"),
        (r"`z = ([\d.]+)` \(`ANOMALY_Z`\)", "ANOMALY_Z"),
        (r"the `(\d+)%` default \(`DEFAULT_REL_TOL`\)",
         "DEFAULT_REL_TOL"),
    )

    @pytest.mark.parametrize("pattern, name", CLAIMS)
    def test_documented_constant_matches_code(self, doc_text, pattern,
                                              name):
        claim = re.search(pattern, doc_text)
        assert claim is not None, f"{name} claim missing from doc"
        documented = float(claim.group(1))
        actual = getattr(ledger, name)
        if name == "DEFAULT_REL_TOL":
            documented /= 100.0
        assert documented == pytest.approx(actual)

    def test_noise_z_comes_from_bench(self, doc_text):
        claim = re.search(r"`NOISE_Z = (\d+)` from "
                          r"`repro\.experiments\.bench`", doc_text)
        assert claim is not None
        assert float(claim.group(1)) == pytest.approx(NOISE_Z)


class TestCrossReferences:
    def test_doc_names_real_modules_and_tests(self, doc_text):
        root = Path(__file__).resolve().parents[1]
        assert "repro.ledger" in doc_text
        assert "tests/test_ledger.py" in doc_text
        assert (root / "tests" / "test_ledger.py").exists()
        assert "tests/test_ledger_docs.py" in doc_text
        assert "scripts/bench_tracer_overhead.py" in doc_text
        assert (root / "scripts" / "bench_tracer_overhead.py").exists()

    def test_store_names_match_code(self, doc_text):
        assert f"`{ledger.DEFAULT_DIR}/`" in doc_text
        assert f"`{ledger.DB_NAME}`" in doc_text
        assert f"`{ledger.EXPORT_NAME}`" in doc_text
        assert f"`{ledger.ENV_TOGGLE}=0`" in doc_text
        assert f"`{ledger.ENV_DIR}`" in doc_text
