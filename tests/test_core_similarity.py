"""Unit tests for reference selection and the similarity scanner,
including the paper's Table 2 selection example."""

import numpy as np
import pytest

from repro.core.cache import ICashCache
from repro.core.heatmap import Heatmap
from repro.core.signatures import block_signatures
from repro.core.similarity import (SimilarityScanner, popularity_ranking,
                                   select_reference)
from repro.core.virtual_block import BlockKind, VirtualBlock
from repro.delta.segments import SegmentPool
from repro.sim.request import BLOCK_SIZE

A, B, C, D = 0, 1, 2, 3


def table1_heatmap() -> Heatmap:
    heatmap = Heatmap(rows=2, values=4)
    for sigs in ((A, B), (C, D), (A, D), (B, D)):
        heatmap.record(sigs)
    return heatmap


class TestTable2Selection:
    def test_most_popular_block_selected(self):
        """Table 2: block (A, D) at LBA3 has popularity 5 and is chosen."""
        heatmap = table1_heatmap()
        entries = [("LBA1", (A, B)), ("LBA2", (C, D)),
                   ("LBA3", (A, D)), ("LBA4", (B, D))]
        assert select_reference(entries, heatmap) == "LBA3"

    def test_ranking_matches_popularity_column(self):
        heatmap = table1_heatmap()
        entries = [("LBA1", (A, B)), ("LBA2", (C, D)),
                   ("LBA3", (A, D)), ("LBA4", (B, D))]
        ranked = popularity_ranking(entries, heatmap)
        assert ranked[0] == ("LBA3", 5)
        assert {ranked[1][0], ranked[2][0]} == {"LBA2", "LBA4"}
        assert ranked[3] == ("LBA1", 3)

    def test_ties_preserve_input_order(self):
        heatmap = table1_heatmap()
        ranked = popularity_ranking(
            [("x", (C, D)), ("y", (B, D))], heatmap)
        assert [key for key, _ in ranked] == ["x", "y"]

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            select_reference([], table1_heatmap())


def make_cache() -> ICashCache:
    return ICashCache(max_virtual_blocks=1024,
                      data_ram_bytes=256 * BLOCK_SIZE,
                      segment_pool=SegmentPool(1 << 20))


def make_scanner(heatmap: Heatmap) -> SimilarityScanner:
    return SimilarityScanner(heatmap, min_signature_match=4,
                             delta_accept_bytes=2048,
                             scan_compare_s=2e-6, compress_s=15e-6)


def populate(cache: ICashCache, heatmap: Heatmap, blocks) -> dict:
    """Insert blocks as independents with data; returns lba -> content."""
    contents = {}
    for lba, content in blocks:
        vb = VirtualBlock(lba=lba, kind=BlockKind.INDEPENDENT)
        vb.signatures = block_signatures(content)
        cache.insert(vb)
        cache.attach_data(vb, content)
        heatmap.record(vb.signatures)
        contents[lba] = content
    return contents


class TestScanner:
    def test_similar_blocks_pair_with_one_reference(self, rng):
        """A family of similar blocks yields one reference, rest
        associates — the paper's 1 % / 85 % structure in miniature."""
        cache = make_cache()
        heatmap = Heatmap()
        base = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        family = []
        for lba in range(10):
            member = base.copy()
            member[lba * 10:(lba * 10) + 20] = 0
            family.append((lba, member))
        populate(cache, heatmap, family)
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=50,
                              content_fn=lambda vb: vb.data)
        assert len(result.new_references) == 1
        assert len(result.associations) == 9
        ref_lba = result.new_references[0].lba
        assert all(a.ref_lba == ref_lba for a in result.associations)

    def test_dissimilar_blocks_all_become_references(self, rng):
        cache = make_cache()
        heatmap = Heatmap()
        blocks = [(lba, rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8))
                  for lba in range(6)]
        populate(cache, heatmap, blocks)
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=50,
                              content_fn=lambda vb: vb.data)
        assert len(result.associations) == 0
        assert len(result.new_references) >= 1

    def test_promotions_capped_by_ssd_budget(self, rng):
        cache = make_cache()
        heatmap = Heatmap()
        blocks = [(lba, rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8))
                  for lba in range(8)]
        populate(cache, heatmap, blocks)
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=2,
                              content_fn=lambda vb: vb.data)
        assert len(result.new_references) <= 2

    def test_blocks_without_content_are_skipped(self, rng):
        cache = make_cache()
        heatmap = Heatmap()
        blocks = [(lba, rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8))
                  for lba in range(4)]
        populate(cache, heatmap, blocks)
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=50,
                              content_fn=lambda vb: None)
        assert result.new_references == []
        assert result.associations == []

    def test_scan_accounts_cpu_time(self, rng):
        cache = make_cache()
        heatmap = Heatmap()
        base = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        blocks = [(lba, base.copy()) for lba in range(5)]
        populate(cache, heatmap, blocks)
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=10,
                              content_fn=lambda vb: vb.data)
        assert result.cpu_time > 0
        assert result.blocks_examined == 5

    def test_existing_associates_left_alone(self, rng):
        cache = make_cache()
        heatmap = Heatmap()
        base = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        populate(cache, heatmap, [(0, base), (1, base.copy())])
        vb = cache.get(1)
        vb.kind = BlockKind.ASSOCIATE
        vb.ref_lba = 0
        from repro.delta.encoder import Delta
        cache.attach_delta(vb, Delta(runs=()))
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=10,
                              content_fn=lambda vb: vb.data)
        assert all(a.vb.lba != 1 for a in result.associations)

    def test_low_overlap_prevents_pairing(self, rng):
        """Candidates sharing fewer than min_signature_match positions
        never even get a delta encode."""
        cache = make_cache()
        heatmap = Heatmap()
        a = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        b = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        populate(cache, heatmap, [(0, a), (1, b)])
        scanner = make_scanner(heatmap)
        result = scanner.scan(cache, window=100, max_new_references=1,
                              content_fn=lambda vb: vb.data)
        # Only one promotion allowed and the other block cannot pair.
        assert len(result.associations) == 0
