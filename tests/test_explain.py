"""The explain engine's acceptance contract (ISSUE 9).

Covers the four criteria the PR promises:

* between two ledger runs differing only by an injected config
  override, `repro explain` ranks that knob as the #1 suspect and the
  evidence includes attribution rows that moved;
* between two identical-seed runs it reports "no significant deltas";
* the rendered report and its JSON form are byte-deterministic for
  fixed inputs;
* the flame-diff export round-trips through the folded-stack parser.

Plus unit coverage of the building blocks: phase segmentation and
alignment, queueing diffs, scalar significance, and the CLI surface
(`repro explain`, `repro ledger diff --deep`, bench EXPLAIN emission).
"""

import json
import os
from dataclasses import replace

import pytest

from repro.analysis.explain import (align_phases, diff_queueing,
                                    explain_bench_cases,
                                    explain_results, export_flame_diff,
                                    fingerprint_distance,
                                    flame_diff_stacks, parse_flame_diff,
                                    segment_phases,
                                    significant_scalars)
from repro.core import ICASHController
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.ledger import LedgerWriter
from repro.sim.metrics import Monitor
from repro.sim.profile import Profiler
from repro.workloads import SysBenchWorkload

N_REQUESTS = 500
SEED = 2011
#: The injected knob: accept almost no delta as compressible, which
#: guts the paper's core mechanism and moves every headline metric.
OVERRIDE = ("delta_accept_bytes", 1)


def _run(seed=SEED, overrides=()):
    workload = SysBenchWorkload(n_requests=N_REQUESTS, seed=seed)
    config = make_icash_config(workload)
    if overrides:
        config = replace(config, **dict(overrides))
    system = ICASHController(workload.build_dataset(), config)
    return run_benchmark(workload, system, engine="event",
                         profiler=Profiler(),
                         monitor=Monitor(interval_s=0.01))


@pytest.fixture(scope="module")
def base_result():
    return _run()


@pytest.fixture(scope="module")
def twin_result():
    return _run()


@pytest.fixture(scope="module")
def override_result():
    return _run(overrides=(OVERRIDE,))


def _spec(seed=SEED, overrides=()):
    return {"workload": "sysbench", "system": "icash",
            "engine": "event", "seed": seed,
            "config_overrides": [list(pair) for pair in overrides]}


@pytest.fixture(scope="module")
def store(tmp_path_factory, base_result, twin_result, override_result):
    """A ledger holding seq 1 = base, 2 = identical twin, 3 = override."""
    root = str(tmp_path_factory.mktemp("explain-ledger"))
    writer = LedgerWriter(root)
    writer.record(base_result, command="test", spec=_spec())
    writer.record(twin_result, command="test", spec=_spec())
    writer.record(override_result, command="test",
                  spec=_spec(overrides=(OVERRIDE,)))
    return writer


class TestLedgerExplain:
    def test_config_override_is_top_suspect(self, store):
        report = store.explain("1", "3")
        assert report.significant
        assert report.suspects, "a real regression must produce suspects"
        top = report.suspects[0]
        assert top.cause == "config_override"
        assert "delta_accept_bytes" in top.summary
        assert top.evidence, "the top suspect must carry evidence"

    def test_attribution_rows_appear_as_evidence(self, store):
        report = store.explain("1", "3")
        top = report.suspects[0]
        moved = {f"{d.op}" for d in report.attribution_deltas
                 if d.significant}
        assert moved, "the override must move attribution rows"
        assert any(op in line for line in top.evidence for op in moved)

    def test_identical_runs_report_no_significant_deltas(self, store):
        report = store.explain("1", "2")
        assert not report.significant
        assert not report.suspects
        assert "no significant deltas" in report.render()

    def test_render_is_byte_deterministic(self, store):
        first = store.explain("1", "3")
        second = store.explain("1", "3")
        assert first.render() == second.render()
        assert first.render_json() == second.render_json()
        json.loads(first.render_json())  # and it is valid JSON


class TestLiveResultExplain:
    def test_full_report_carries_all_four_sections(
            self, base_result, override_result):
        report = explain_results(base_result, override_result,
                                 spec_a=_spec(),
                                 spec_b=_spec(overrides=(OVERRIDE,)))
        assert report.significant
        assert report.scalar_deltas
        assert report.attribution_deltas
        assert report.queueing_diff is not None
        assert report.phase_report is not None
        doc = report.to_json()
        assert doc["queueing"] is not None
        assert doc["phases"] is not None
        assert doc["suspects"][0]["cause"] == "config_override"

    def test_self_diff_is_quiet(self, base_result):
        report = explain_results(base_result, base_result)
        assert not report.significant
        assert "no significant deltas" in report.render()


class TestFlameDiff:
    def test_round_trips_through_parser(self, base_result,
                                        override_result, tmp_path):
        report = explain_results(base_result, override_result)
        path = str(tmp_path / "flame.diff")
        lines = export_flame_diff(report.view_a, report.view_b, path)
        assert lines > 0
        parsed = parse_flame_diff(path)
        stacks = flame_diff_stacks(report.view_a, report.view_b)
        assert parsed == stacks

    def test_stack_shape_is_op_device_phase(self, base_result):
        from repro.analysis.explain import view_from_result

        view = view_from_result(base_result, "a")
        stacks = flame_diff_stacks(view, view)
        assert stacks
        for stack, (a_us, b_us) in stacks.items():
            assert len(stack.split(";")) == 3
            assert a_us == b_us  # self-diff

    def test_export_matches_folded_stack_grammar(self, base_result,
                                                 tmp_path):
        """Each line is `frames SPACE int SPACE int` — what
        flamegraph.pl --negate and speedscope's importer expect."""
        from repro.analysis.explain import view_from_result

        view = view_from_result(base_result, "a")
        path = str(tmp_path / "flame.diff")
        export_flame_diff(view, view, path)
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                stack, count_a, count_b = line.rsplit(" ", 2)
                assert stack
                int(count_a)
                int(count_b)


class TestPhases:
    def test_fingerprint_distance_sentinels(self):
        assert fingerprint_distance((-1.0, 0.5), (-1.0, 0.5)) == 0.0
        assert fingerprint_distance((-1.0, 0.5), (0.3, 0.5)) == 0.5
        assert fingerprint_distance((0.2,), (0.6,)) == pytest.approx(0.4)

    def test_alignment_identity(self):
        class FakePhase:
            def __init__(self, index, fingerprint):
                self.index = index
                self.fingerprint = fingerprint

        a = [FakePhase(0, (0.1, 0.2)), FakePhase(1, (0.8, 0.9))]
        assert align_phases(a, a) == [(0, 0), (1, 1)]

    def test_alignment_with_gap(self):
        class FakePhase:
            def __init__(self, index, fingerprint):
                self.index = index
                self.fingerprint = fingerprint

        a = [FakePhase(0, (0.1,)), FakePhase(1, (0.9,))]
        b = [FakePhase(0, (0.1,))]
        pairs = align_phases(a, b)
        assert (0, 0) in pairs
        assert (1, None) in pairs

    def test_segmentation_on_live_series(self, base_result):
        phases = segment_phases(base_result.series)
        assert phases, "a run with windows must yield >= 1 phase"
        assert phases[0].start_window == 0
        assert phases[-1].end_window == len(base_result.series.windows)
        for earlier, later in zip(phases, phases[1:]):
            assert earlier.end_window == later.start_window


class TestQueueing:
    def test_self_diff_keeps_bottleneck(self, base_result):
        from repro.analysis.explain import view_from_result

        view = view_from_result(base_result, "a")
        diff = diff_queueing(view, view)
        assert diff is not None
        assert not diff.bottleneck_moved
        assert not diff.significant

    def test_missing_queueing_degrades_to_none(self, store):
        row = store.get("1")
        from repro.analysis.explain import view_from_ledger_row

        view = view_from_ledger_row(row)
        assert diff_queueing(view, view) is None


class TestScalars:
    def test_significance_respects_tolerance(self, store):
        report = store.explain("1", "2")
        assert significant_scalars(report.scalar_deltas) == []
        report = store.explain("1", "3")
        sig = significant_scalars(report.scalar_deltas)
        assert any(d.metric == "transactions_per_s" for d in sig)


class TestCLI:
    def test_explain_command_text_and_json(self, store, capsys):
        from repro.cli import main

        code = main(["explain", "1", "3", "--dir", store.root])
        out = capsys.readouterr().out
        assert code == 0
        assert "config overrides differ" in out

        code = main(["explain", "1", "3", "--dir", store.root,
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["suspects"][0]["cause"] == "config_override"

    def test_explain_flame_diff_flag(self, store, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "fd.txt")
        code = main(["explain", "1", "3", "--dir", store.root,
                     "--flame-diff", path])
        capsys.readouterr()
        assert code == 0
        assert parse_flame_diff(path) is not None

    def test_explain_rejects_mixed_inputs(self, store, tmp_path,
                                          capsys):
        from repro.cli import main

        bench = tmp_path / "BENCH_1.json"
        bench.write_text("{}")
        code = main(["explain", str(bench), "1", "--dir", store.root])
        capsys.readouterr()
        assert code == 2

    def test_ledger_diff_deep_delegates(self, store, capsys):
        from repro.cli import main

        code = main(["ledger", "diff", "1", "3", "--deep",
                     "--dir", store.root])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("explain:")
        assert "suspects" in out


class TestBenchEmission:
    def test_regressed_case_emits_explain_report(self, tmp_path,
                                                 capsys):
        """A doctored baseline forces a regression; the compare path
        must write EXPLAIN_<case>.{txt,json} and print suspects."""
        from repro.cli import _emit_explain_reports
        from repro.experiments import bench

        case = {"case": "sysbench-icash-event", "workload": "sysbench",
                "system": "icash", "engine": "event", "seed": SEED,
                "n_requests": N_REQUESTS, "scale": None,
                "n_measured": 375,
                "metrics": {"transactions_per_s": 1000.0,
                            "read_mean_us": 30.0},
                "noise": {}, "attribution": []}
        slower = dict(case,
                      metrics={"transactions_per_s": 500.0,
                               "read_mean_us": 90.0})
        baseline = {"cases": [case]}
        current = {"cases": [slower]}
        deltas = bench.compare(baseline, current)
        regressed = bench.regressions(deltas)
        assert regressed
        out_dir = str(tmp_path / "bench-out")
        _emit_explain_reports(baseline, current, regressed, out_dir)
        printed = capsys.readouterr().out
        stem = os.path.join(out_dir, "EXPLAIN_sysbench-icash-event")
        assert os.path.exists(stem + ".txt")
        assert os.path.exists(stem + ".json")
        doc = json.loads(open(stem + ".json", encoding="utf-8").read())
        assert doc["significant"]
        assert "explain: sysbench-icash-event" in printed
        assert "1. [" in printed


class TestDocParity:
    """docs/OBSERVABILITY.md, README.md and docs/LEDGER.md must track
    the engine: the suspect-score table, the CLI surface and the
    debugging walkthrough are contracts, not prose."""

    @pytest.fixture(scope="class")
    def obs_doc(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        return (root / "docs" / "OBSERVABILITY.md").read_text()

    def test_suspect_score_table_matches_code(self, obs_doc):
        from repro.analysis.explain import SUSPECT_SCORES

        section = obs_doc.split("# Explaining a delta", 1)[1]
        for cause, score in SUSPECT_SCORES.items():
            row = f"| `{cause}` | {score:.2f} |"
            assert row in section, f"suspect {cause!r} undocumented"

    def test_walkthrough_chains_every_tool(self, obs_doc):
        section = obs_doc.split("# Debugging a regression", 1)[1]
        for command in ("repro bench --compare", "ledger diff",
                        "repro monitor --json", "repro critpath --json",
                        "repro trace", "explain"):
            assert command in section, f"{command!r} missing from the " \
                                       f"walkthrough"

    def test_flame_diff_grammar_documented(self, obs_doc):
        assert "op;device;phase a_us b_us" in obs_doc
        assert "--negate" in obs_doc

    def test_readme_cross_links(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        readme = " ".join((root / "README.md").read_text().split())
        assert "python -m repro explain" in readme
        assert "trace → monitor → critpath → ledger diff → explain" \
            in readme

    def test_ledger_doc_cross_links(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        ledger_doc = (root / "docs" / "LEDGER.md").read_text()
        assert "`--deep`" in ledger_doc
        assert "OBSERVABILITY.md" in ledger_doc


class TestBenchFileInput:
    def test_two_bench_files_shared_case(self, tmp_path, capsys):
        from repro.cli import main

        case = {"case": "only", "workload": "sysbench",
                "system": "icash", "engine": "event", "seed": SEED,
                "n_requests": 100, "scale": None, "n_measured": 75,
                "metrics": {"transactions_per_s": 1000.0},
                "noise": {}, "attribution": []}
        doc = {"schema_version": 3, "cases": [case]}
        path_a = tmp_path / "BENCH_1.json"
        path_b = tmp_path / "BENCH_2.json"
        path_a.write_text(json.dumps(doc))
        path_b.write_text(json.dumps(
            {"schema_version": 3,
             "cases": [dict(case,
                            metrics={"transactions_per_s": 400.0})]}))
        code = main(["explain", str(path_a), str(path_b)])
        out = capsys.readouterr().out
        assert code == 0
        assert "transactions_per_s" in out
