"""Unit tests for the energy, wear and CPU-utilisation models."""

import math

import pytest

from repro.baselines import PureSSD, RAID0Storage
from repro.devices.ssd import FlashSSD, SSDSpec
from repro.metrics.cpu import cpu_utilization
from repro.metrics.energy import EnergyReport, EnergySpec, measure_energy
from repro.metrics.wear import wear_report

from conftest import make_block, make_dataset


class TestEnergyModel:
    def test_ssd_energy_counts_per_op(self):
        system = PureSSD(make_dataset(32))
        system.read(0, 2)
        system.write(1, [make_block()])
        spec = EnergySpec()
        report = measure_energy(system, wall_time_s=1.0, app_cpu_s=0.0,
                                spec=spec)
        expected_ssd = 2 * spec.ssd_read_j + 1 * spec.ssd_write_j
        assert report.ssd_j == pytest.approx(expected_ssd)
        # A pure-SSD host still spins its system disk (the paper counts it).
        assert report.hdd_j == pytest.approx(spec.system_disk_w * 1.0)

    def test_hdd_energy_has_spin_component(self):
        system = RAID0Storage(make_dataset(32), ndisks=4)
        spec = EnergySpec()
        report = measure_energy(system, wall_time_s=10.0, app_cpu_s=0.0,
                                spec=spec)
        # Four spindles spinning for 10 s even with zero activity.
        assert report.hdd_j == pytest.approx(4 * spec.hdd_spin_w * 10.0)

    def test_active_hdd_costs_more(self):
        idle = RAID0Storage(make_dataset(64), ndisks=4)
        busy = RAID0Storage(make_dataset(64), ndisks=4)
        for lba in range(0, 60, 7):
            busy.read(lba)
        idle_j = measure_energy(idle, 5.0, 0.0).hdd_j
        busy_j = measure_energy(busy, 5.0, 0.0).hdd_j
        assert busy_j > idle_j

    def test_cpu_energy_counts_app_and_storage(self):
        system = PureSSD(make_dataset(16))
        system.cpu_time = 2.0
        spec = EnergySpec()
        report = measure_energy(system, 10.0, app_cpu_s=3.0, spec=spec)
        assert report.cpu_j == pytest.approx(spec.cpu_active_w * 5.0)

    def test_storage_cpu_override_excludes_load_phase(self):
        system = PureSSD(make_dataset(16))
        system.cpu_time = 2.0  # includes (say) ingest computation
        spec = EnergySpec()
        report = measure_energy(system, 10.0, app_cpu_s=0.0,
                                storage_cpu_s=0.5, spec=spec)
        assert report.cpu_j == pytest.approx(spec.cpu_active_w * 0.5)

    def test_wh_conversion_and_breakdown(self):
        report = EnergyReport(hdd_j=3600.0, ssd_j=7200.0, cpu_j=0.0)
        assert report.total_wh == pytest.approx(3.0)
        assert report.breakdown_wh() == {"hdd": 1.0, "ssd": 2.0, "cpu": 0.0}

    def test_negative_times_rejected(self):
        system = PureSSD(make_dataset(16))
        with pytest.raises(ValueError):
            measure_energy(system, -1.0, 0.0)

    def test_gc_traffic_costs_energy(self):
        spec = SSDSpec(pages_per_block=8, overprovision=0.15)
        ssd = FlashSSD(64, spec)
        for _ in range(10):
            for lba in range(64):
                ssd.write(lba, 1)

        class _Holder:
            cpu_time = 0.0

            def devices(self):
                return (ssd,)
        holder = _Holder()
        report = measure_energy(holder, 1.0, 0.0)
        base = ssd.stats.count("write_blocks") * EnergySpec().ssd_write_j \
            + ssd.stats.count("read_blocks") * EnergySpec().ssd_read_j
        assert report.ssd_j > base  # erases and moves cost extra


class TestWearModel:
    def worn_ssd(self) -> FlashSSD:
        ssd = FlashSSD(64, SSDSpec(pages_per_block=8, overprovision=0.15))
        for _ in range(10):
            for lba in range(64):
                ssd.write(lba, 1)
        return ssd

    def test_report_fields_consistent(self):
        ssd = self.worn_ssd()
        report = wear_report(ssd, wall_time_s=100.0)
        assert report.total_erases == ssd.total_erases
        assert report.max_erase_count >= report.mean_erase_count
        assert report.write_amplification >= 1.0
        assert report.host_write_pages == ssd.stats.count("write_blocks")

    def test_lifetime_projection_positive(self):
        ssd = self.worn_ssd()
        report = wear_report(ssd, wall_time_s=100.0)
        assert report.projected_lifetime_years is not None
        assert report.projected_lifetime_years > 0

    def test_fresh_ssd_has_unbounded_life(self):
        ssd = FlashSSD(64, SSDSpec(pages_per_block=8))
        report = wear_report(ssd, wall_time_s=10.0)
        assert report.projected_lifetime_years is None
        assert report.wear_evenness == 1.0

    def test_fewer_writes_project_longer_life(self):
        """The paper's Table 6 argument: fewer SSD writes, longer life."""
        light = FlashSSD(64, SSDSpec(pages_per_block=8, overprovision=0.15))
        heavy = FlashSSD(64, SSDSpec(pages_per_block=8, overprovision=0.15))
        for _round_ in range(3):
            for lba in range(64):
                light.write(lba, 1)
        for _round_ in range(30):
            for lba in range(64):
                heavy.write(lba, 1)
        light_report = wear_report(light, 100.0)
        heavy_report = wear_report(heavy, 100.0)
        if light_report.projected_lifetime_years is None:
            return  # light usage never triggered an erase: trivially longer
        assert light_report.projected_lifetime_years \
            > heavy_report.projected_lifetime_years

    def test_wall_time_validated(self):
        with pytest.raises(ValueError):
            wear_report(FlashSSD(64), 0.0)

    def test_zero_erase_evenness_is_level(self):
        # Division-by-zero edge: no erases means mean erase count 0;
        # evenness must report perfectly level (1.0), not blow up.
        ssd = FlashSSD(64, SSDSpec(pages_per_block=8))
        ssd.write(0, 4)  # a few programs, not enough to erase
        report = wear_report(ssd, wall_time_s=1.0)
        assert report.total_erases == 0
        assert report.mean_erase_count == 0.0
        assert report.wear_evenness == 1.0
        assert report.erase_stddev == 0.0
        assert report.projected_lifetime_years is None

    def test_single_logical_block_ssd(self):
        # Capacity <= pages_per_block: one logical flash block (plus
        # over-provisioned spares).  Hammering it must still produce a
        # finite, consistent report — the degenerate geometry the
        # evenness ratio is most fragile on.
        ssd = FlashSSD(8, SSDSpec(pages_per_block=8, overprovision=0.15))
        for _ in range(40):
            for lba in range(8):
                ssd.write(lba, 1)
        assert ssd.total_erases > 0
        report = wear_report(ssd, wall_time_s=10.0)
        assert report.wear_evenness >= 1.0
        assert math.isfinite(report.wear_evenness)
        assert report.max_erase_count <= report.total_erases
        assert report.projected_lifetime_years is not None
        assert report.projected_lifetime_years >= 0.0

    def test_evenness_ratio_matches_counts(self):
        ssd = FlashSSD(64, SSDSpec(pages_per_block=8, overprovision=0.15))
        for _ in range(10):
            for lba in range(64):
                ssd.write(lba, 1)
        report = wear_report(ssd, wall_time_s=10.0)
        counts = ssd.erase_counts()
        expected = max(counts) / (sum(counts) / len(counts))
        assert report.wear_evenness == pytest.approx(expected)


class TestCPUModel:
    def test_basic_ratio(self):
        assert cpu_utilization(1.0, 0.5, 3.0) == pytest.approx(0.5)

    def test_clamped_at_one(self):
        assert cpu_utilization(5.0, 5.0, 3.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_utilization(1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            cpu_utilization(-1.0, 0.0, 1.0)


class TestLifetimeProjection:
    def test_rows_and_rendering(self):
        from repro.experiments.lifetime import (lifetime_projection,
                                                render_lifetime_table)
        from repro.workloads import SysBenchWorkload
        rows = lifetime_projection(
            lambda: SysBenchWorkload(scale=0.1, n_requests=1500))
        assert set(rows) == {"fusion-io", "dedup", "lru", "icash"}
        table = render_lifetime_table(rows)
        assert "icash" in table and "WA" in table
        # I-CASH's flash wears no faster than the same-budget caches'.
        assert rows["icash"].total_erases <= rows["lru"].total_erases
