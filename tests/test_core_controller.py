"""Integration-grade unit tests for the I-CASH controller.

The central invariant throughout: whatever was written must read back
byte-identical, no matter which internal representation (RAM data block,
reference + delta, SSD spill, HDD region, delta log) currently holds it.
"""

import numpy as np
import pytest

from repro.core import BlockKind, ICASHConfig, ICASHController
from repro.core.signatures import block_signatures
from repro.sim.request import BLOCK_SIZE

from conftest import make_dataset


def small_config(**overrides) -> ICASHConfig:
    defaults = dict(
        ssd_capacity_blocks=64,
        data_ram_bytes=32 * BLOCK_SIZE,
        delta_ram_bytes=64 * 1024,
        max_virtual_blocks=512,
        log_blocks=512,
        scan_interval=100,
        scan_window=256,
        flush_interval=128,
    )
    defaults.update(overrides)
    return ICASHConfig(**defaults)


@pytest.fixture
def controller() -> ICASHController:
    return ICASHController(make_dataset(256), small_config())


def family_dataset(n_blocks: int = 256, n_families: int = 8,
                   seed: int = 3) -> np.ndarray:
    gen = np.random.default_rng(seed)
    bases = gen.integers(0, 256, (n_families, BLOCK_SIZE), dtype=np.uint8)
    dataset = bases[gen.integers(0, n_families, n_blocks)].copy()
    for lba in range(n_blocks):
        idx = gen.integers(0, BLOCK_SIZE, 16)
        dataset[lba, idx] = gen.integers(0, 256, 16)
    return dataset


class TestReadPath:
    def test_cold_read_returns_initial_content(self, controller):
        dataset = controller.backing
        latency, (content,) = controller.read(10)
        assert np.array_equal(content, dataset.get(10))
        assert latency > 0
        assert controller.stats.count("hdd_data_reads") == 1

    def test_second_read_hits_ram(self, controller):
        controller.read(10)
        before = controller.hdd.read_ops
        controller.read(10)
        assert controller.hdd.read_ops == before
        assert controller.stats.count("ram_data_hits") == 1

    def test_multiblock_read(self, controller):
        latency, contents = controller.read(4, 3)
        assert len(contents) == 3
        for offset, content in enumerate(contents):
            assert np.array_equal(content, controller.backing.get(4 + offset))

    def test_bounds_checked(self, controller):
        with pytest.raises(ValueError):
            controller.read(256)


class TestWritePath:
    def test_write_then_read_roundtrip(self, controller, rng):
        content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        controller.write(7, [content])
        _, (out,) = controller.read(7)
        assert np.array_equal(out, content)

    def test_write_latency_is_microseconds(self, controller, rng):
        """The headline: I-CASH writes are RAM-speed, not device-speed."""
        content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        latency = controller.write(7, [content])
        assert latency < 100e-6

    def test_overwrites_visible_in_order(self, controller, rng):
        for fill in (1, 2, 3):
            block = np.full(BLOCK_SIZE, fill, dtype=np.uint8)
            controller.write(3, [block])
        _, (out,) = controller.read(3)
        assert (out == 3).all()


class TestDeltaMachinery:
    def test_ingest_builds_reference_structure(self):
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        counts = controller.block_kind_counts()
        assert counts["reference"] >= 8
        assert counts["associate"] > counts["reference"]
        assert controller.stats.count("ingest_deltas") > 0

    def test_ingest_preserves_all_content(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        for lba in range(0, 256, 7):
            _, (content,) = controller.read(lba)
            assert np.array_equal(content, dataset[lba]), f"lba {lba}"

    def test_associate_write_produces_delta_not_ssd_write(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        ssd_writes = controller.ssd.write_ops
        # Find an associate and write a small change to it.
        lba = next(iter(controller.delta_map_snapshot()))
        content = dataset[lba].copy()
        content[0:40] = 0
        controller.write(lba, [content])
        assert controller.stats.count("delta_writes") == 1
        assert controller.ssd.write_ops == ssd_writes
        _, (out,) = controller.read(lba)
        assert np.array_equal(out, content)

    def test_large_delta_spills_to_ssd(self, rng):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        lba = next(iter(controller.delta_map_snapshot()))
        # Rewrite the block entirely: delta exceeds the 2048 B threshold.
        content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        controller.write(lba, [content])
        assert controller.stats.count("delta_spills") == 1
        assert lba in controller.spilled_lbas
        _, (out,) = controller.read(lba)
        assert np.array_equal(out, content)

    def test_spilled_block_write_through_hits_ssd(self, rng):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        lba = next(iter(controller.delta_map_snapshot()))
        controller.write(lba, [rng.integers(0, 256, BLOCK_SIZE,
                                            dtype=np.uint8)])
        ssd_writes = controller.ssd.write_ops
        newer = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        controller.write(lba, [newer])
        assert controller.ssd.write_ops == ssd_writes + 1
        assert controller.stats.count("spilled_write_through") == 1
        _, (out,) = controller.read(lba)
        assert np.array_equal(out, newer)

    def test_reference_write_keeps_frozen_copy(self, rng):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        ref_lba = next(iter(controller.reference_lbas))
        frozen = controller.ssd_content_snapshot()[ref_lba].copy()
        content = dataset[ref_lba].copy()
        content[100:140] = 0
        controller.write(ref_lba, [content])
        assert controller.stats.count("reference_delta_writes") == 1
        # The SSD copy is untouched; reads combine it with the delta.
        assert np.array_equal(controller.ssd_content_snapshot()[ref_lba],
                              frozen)
        _, (out,) = controller.read(ref_lba)
        assert np.array_equal(out, content)

    def test_reference_write_reverting_drops_delta(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        ref_lba = next(iter(controller.reference_lbas))
        original = dataset[ref_lba].copy()
        changed = original.copy()
        changed[0:20] = 0
        controller.write(ref_lba, [changed])
        controller.write(ref_lba, [original])  # revert
        vb = controller.cache.get(ref_lba, touch=False)
        assert not vb.has_delta


class TestFlushAndEviction:
    def test_flush_logs_dirty_deltas(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        lba = next(iter(controller.delta_map_snapshot()))
        content = dataset[lba].copy()
        content[0:30] = 0
        controller.write(lba, [content])
        logged_before = controller.log.blocks_written
        controller.flush()
        assert controller.log.blocks_written > logged_before
        entry = controller.delta_map_snapshot()[lba]
        assert entry[1] is not None  # log slot assigned

    def test_content_survives_delta_eviction(self, rng):
        """Delta replacement drops the virtual block but the delta stays
        reachable through the log — reads must still reconstruct."""
        config = small_config(delta_ram_bytes=8 * 1024)  # tiny pool
        dataset = family_dataset()
        controller = ICASHController(dataset, config)
        controller.ingest()
        # Write small deltas to many blocks to thrash the pool.
        written = {}
        lbas = list(controller.delta_map_snapshot())[:60]
        for lba in lbas:
            content = dataset[lba].copy()
            content[8:48] = rng.integers(0, 256, 40)
            controller.write(lba, [content])
            written[lba] = content
        for lba, content in written.items():
            _, (out,) = controller.read(lba)
            assert np.array_equal(out, content), f"lba {lba}"

    def test_log_fetch_hydrates_siblings(self):
        dataset = family_dataset()
        # A pool too small to keep every ingested delta in RAM guarantees
        # some blocks are reachable only through the log.
        controller = ICASHController(
            dataset, small_config(delta_ram_bytes=8 * 1024))
        controller.ingest()
        # Evict every cached virtual block state by forcing a fresh
        # controller view: read a delta-mapped block not cached in RAM.
        mapped = [lba for lba in controller.delta_map_snapshot()
                  if lba not in controller.cache]
        if not mapped:
            pytest.skip("ingest cached every delta in RAM")
        controller.read(mapped[0])
        assert controller.stats.count("log_delta_fetches") >= 1


class TestScanIntegration:
    def test_scan_promotes_and_associates_online(self, rng):
        """Without ingest, the periodic scan alone must discover the
        reference/associate structure."""
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        for _i in range(600):
            controller.read(int(rng.integers(0, 256)))
        counts = controller.block_kind_counts()
        assert controller.stats.count("scans") >= 5
        assert counts["reference"] >= 1
        assert counts["associate"] >= 1

    def test_block_kind_counts_cover_population(self):
        dataset = family_dataset()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        counts = controller.block_kind_counts()
        assert sum(counts.values()) >= 256 * 0.9


class TestRandomizedShadowComparison:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_workload_matches_shadow(self, seed):
        dataset = family_dataset(seed=seed)
        shadow = dataset.copy()
        controller = ICASHController(dataset, small_config())
        controller.ingest()
        gen = np.random.default_rng(seed)
        for i in range(1500):
            lba = int(gen.integers(0, 256))
            if gen.random() < 0.4:
                content = shadow[lba].copy()
                span = int(gen.integers(1, 200))
                start = int(gen.integers(0, BLOCK_SIZE - span))
                content[start:start + span] = gen.integers(0, 256, span)
                shadow[lba] = content
                controller.write(lba, [content])
            else:
                _, (out,) = controller.read(lba)
                assert np.array_equal(out, shadow[lba]), \
                    f"mismatch at lba {lba}, op {i}"
