"""Unit and property tests for the byte-range delta codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.encoder import (DELTA_HEADER_BYTES, MERGE_GAP,
                                 RUN_HEADER_BYTES, Delta, apply_delta,
                                 encode_delta)
from repro.sim.request import BLOCK_SIZE

from conftest import make_block


class TestEncodeBasics:
    def test_identity_delta_is_empty(self):
        block = make_block(3)
        delta = encode_delta(block, block.copy())
        assert delta.is_identity
        assert delta.size_bytes == DELTA_HEADER_BYTES
        assert delta.changed_bytes == 0

    def test_single_byte_change(self):
        ref = make_block(0)
        target = ref.copy()
        target[100] = 0xFF
        delta = encode_delta(target, ref)
        assert len(delta.runs) == 1
        offset, payload = delta.runs[0]
        assert offset == 100
        assert payload == b"\xff"

    def test_nearby_changes_merge_into_one_run(self):
        ref = make_block(0)
        target = ref.copy()
        target[10] = 1
        target[10 + MERGE_GAP] = 1  # gap == MERGE_GAP merges
        delta = encode_delta(target, ref)
        assert len(delta.runs) == 1

    def test_distant_changes_stay_separate(self):
        ref = make_block(0)
        target = ref.copy()
        target[10] = 1
        target[500] = 1
        delta = encode_delta(target, ref)
        assert len(delta.runs) == 2

    def test_size_model_counts_headers(self):
        ref = make_block(0)
        target = ref.copy()
        target[0:10] = 9
        delta = encode_delta(target, ref)
        assert delta.size_bytes == DELTA_HEADER_BYTES + RUN_HEADER_BYTES + 10

    def test_small_change_gives_small_delta(self):
        # The paper's premise: 5-20% changed bits -> compact deltas.
        ref = make_block(7)
        target = ref.copy()
        target[1000:1200] = 0  # ~5% of the block
        delta = encode_delta(target, ref)
        assert delta.size_bytes < BLOCK_SIZE // 8

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            encode_delta(np.zeros(10, dtype=np.uint8), make_block())


class TestApply:
    def test_roundtrip(self, rng):
        ref = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = ref.copy()
        idx = rng.integers(0, BLOCK_SIZE, 50)
        target[idx] = rng.integers(0, 256, 50)
        delta = encode_delta(target, ref)
        assert np.array_equal(apply_delta(delta, ref), target)

    def test_apply_does_not_mutate_reference(self):
        ref = make_block(1)
        target = make_block(2)
        delta = encode_delta(target, ref)
        apply_delta(delta, ref)
        assert (ref == 1).all()

    def test_apply_rejects_overflowing_run(self):
        delta = Delta(runs=((BLOCK_SIZE - 1, b"ab"),))
        with pytest.raises(ValueError, match="exceeds"):
            apply_delta(delta, make_block())

    def test_apply_rejects_wrong_reference_size(self):
        with pytest.raises(ValueError):
            apply_delta(Delta(runs=()), np.zeros(8, dtype=np.uint8))


class TestWireFormat:
    def test_serialize_roundtrip(self, rng):
        ref = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = ref.copy()
        target[0:100] = 0
        target[2000:2020] = 1
        delta = encode_delta(target, ref)
        blob = delta.serialize()
        assert len(blob) == delta.size_bytes
        decoded = Delta.deserialize(blob)
        assert decoded == delta
        assert np.array_equal(apply_delta(decoded, ref), target)

    def test_identity_serializes_to_header_only(self):
        blob = Delta(runs=()).serialize()
        assert len(blob) == DELTA_HEADER_BYTES
        assert Delta.deserialize(blob).is_identity

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            Delta.deserialize(b"\x01")

    def test_truncated_run_header_rejected(self):
        with pytest.raises(ValueError, match="run header"):
            Delta.deserialize(b"\x02\x00" + b"\x00\x00\x05\x00")

    def test_truncated_payload_rejected(self):
        good = Delta(runs=((0, b"hello"),)).serialize()
        with pytest.raises(ValueError, match="payload"):
            Delta.deserialize(good[:-1])


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_roundtrip_on_arbitrary_mutations(self, data):
        """encode(target, ref) applied to ref always rebuilds target."""
        seed = data.draw(st.integers(0, 2**32 - 1))
        gen = np.random.default_rng(seed)
        ref = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = ref.copy()
        n_changes = data.draw(st.integers(0, 400))
        if n_changes:
            idx = gen.integers(0, BLOCK_SIZE, n_changes)
            target[idx] = gen.integers(0, 256, n_changes)
        delta = encode_delta(target, ref)
        assert np.array_equal(apply_delta(delta, ref), target)
        # Wire roundtrip preserves semantics too.
        decoded = Delta.deserialize(delta.serialize())
        assert np.array_equal(apply_delta(decoded, ref), target)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 64),
           st.integers(1, 64))
    def test_size_bounded_by_changed_span(self, seed, n_runs, run_len):
        """Delta size never exceeds header overhead plus merged spans."""
        gen = np.random.default_rng(seed)
        ref = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = ref.copy()
        for _ in range(n_runs):
            start = int(gen.integers(0, BLOCK_SIZE - run_len))
            target[start:start + run_len] ^= 0xFF
        delta = encode_delta(target, ref)
        worst = DELTA_HEADER_BYTES + n_runs * (
            RUN_HEADER_BYTES + run_len + MERGE_GAP)
        assert delta.size_bytes <= worst

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_runs_sorted_and_disjoint(self, seed):
        gen = np.random.default_rng(seed)
        ref = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        target = gen.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        delta = encode_delta(target, ref)
        end = -MERGE_GAP - 1
        for offset, payload in delta.runs:
            assert offset > end + MERGE_GAP  # merged if closer
            end = offset + len(payload) - 1
