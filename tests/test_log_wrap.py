"""Direct tests of the circular-log wrap path at controller level.

A long-running element eventually wraps its delta log; the overwritten
blocks' still-current records must be rescued (re-appended) or content
would silently vanish.  These tests force wraps with a deliberately tiny
log region and verify both the rescue accounting and — the part that
matters — byte-exact content throughout.
"""

import numpy as np
import pytest

from repro.core import ICASHController
from repro.core.recovery import recover

from test_core_controller import family_dataset, small_config


def wrapping_controller(log_blocks: int = 48) -> ICASHController:
    """A log larger than the live-delta footprint (its durable home must
    hold every current delta) but small enough that runtime flushes wrap
    it repeatedly."""
    return ICASHController(
        family_dataset(),
        small_config(log_blocks=log_blocks, flush_interval=40,
                     flush_dirty_count=8, delta_ram_bytes=16 * 1024))


class TestLogWrapRescue:
    def test_content_survives_many_wraps(self, rng):
        controller = wrapping_controller()
        controller.ingest()
        shadow = {lba: controller.backing.get(lba) for lba in range(256)}
        for i in range(1200):
            lba = int(rng.integers(0, 256))
            if rng.random() < 0.5:
                content = shadow[lba].copy()
                content[0:40] = rng.integers(0, 256, 40)
                shadow[lba] = content
                controller.write(lba, [content])
            else:
                _, (out,) = controller.read(lba)
                assert np.array_equal(out, shadow[lba]), \
                    f"lba {lba} corrupted after wraps (op {i})"
        # The log must actually have wrapped for this test to mean much.
        assert controller.log.blocks_written > controller.log.size_blocks

    def test_rescued_records_counted(self, rng):
        controller = wrapping_controller(log_blocks=40)
        controller.ingest()
        for _ in range(800):
            lba = int(rng.integers(0, 256))
            content = controller.backing.get(lba)
            content[0:40] = rng.integers(0, 256, 40)
            controller.write(lba, [content])
        assert controller.stats.count("log_rescued_records") > 0

    def test_recovery_correct_after_wraps(self, rng):
        controller = wrapping_controller()
        controller.ingest()
        shadow = {lba: controller.backing.get(lba) for lba in range(256)}
        for _ in range(900):
            lba = int(rng.integers(0, 256))
            content = shadow[lba].copy()
            content[10:60] = rng.integers(0, 256, 50)
            shadow[lba] = content
            controller.write(lba, [content])
        controller.flush()
        image = recover(controller)
        for lba in range(0, 256, 3):
            assert np.array_equal(image.read(lba), shadow[lba]), lba

    def test_pathologically_small_log_raises_clearly(self, rng):
        """A log too small to hold one flush's worth of current deltas
        must fail loudly, not corrupt silently."""
        controller = ICASHController(
            family_dataset(),
            small_config(log_blocks=2, flush_interval=10_000,
                         flush_dirty_count=10_000))
        controller.ingest()  # 8000+ deltas cannot fit 2 log blocks
        mapped = list(controller.delta_map_snapshot())[:120]
        with pytest.raises(RuntimeError, match="delta log too small"):
            for lba in mapped:
                content = controller.backing.get(lba)
                content[0:30] = rng.integers(0, 256, 30)
                controller.write(lba, [content])
            controller.flush()
