"""Discrete-event engine, load generators and saturation sweeps.

The two contract tests the subsystem lives or dies by:

* **Collapse.**  One zero-think closed-loop client serialises the event
  timeline, so every measured total — service times, latency stats, SSD
  write counts, controller counters — must equal the legacy runner's
  exactly (the engine re-times requests; it must never re-order or
  re-process them).
* **Determinism.**  Same seed, same stream, same system → identical
  event order and identical per-request waits and latencies.

Plus the saturation acceptance criteria: a rate sweep's throughput
curve is monotone (within the arrival pattern's tolerance), flattens at
a measurable knee, and post-knee p99 sits strictly above pre-knee p99.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.encoder import Delta
from repro.delta.packer import DeltaLog, DeltaRecord
from repro.devices.hdd import HardDiskDrive
from repro.experiments import loadtest
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.engine import (DeviceStation, EngineConfig, EventEngine,
                              QueueingSummary)
from repro.sim.load import (ClosedLoopLoad, OpenLoopLoad,
                            default_closed_loop)
from repro.sim.metrics import Monitor, SeriesStore, export_prometheus
from repro.sim.trace import RingBufferTracer
from repro.workloads import SysBenchWorkload


def _serial_load() -> ClosedLoopLoad:
    return ClosedLoopLoad(clients=1, think_s=0.0)


def _run_pair(seed: int, n_requests: int = 400):
    """The same (workload, system) pair measured both ways."""
    legacy = run_benchmark(
        SysBenchWorkload(scale=0.05, n_requests=n_requests, seed=seed),
        make_system("icash", SysBenchWorkload(scale=0.05,
                                              n_requests=n_requests,
                                              seed=seed)))
    wl = SysBenchWorkload(scale=0.05, n_requests=n_requests, seed=seed)
    event = run_benchmark(wl, make_system("icash", wl), engine="event",
                          load=_serial_load())
    return legacy, event


class TestCollapseToLegacy:
    """engine="event" with one zero-think client == the legacy replay."""

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_totals_collapse(self, seed):
        legacy, event = _run_pair(seed)
        assert event.engine == "event"
        assert legacy.engine == "legacy"
        # Identical service work: every latency statistic and every
        # device/controller total matches exactly.
        assert event.io_time_s == legacy.io_time_s
        assert event.read_mean_us == legacy.read_mean_us
        assert event.write_mean_us == legacy.write_mean_us
        assert event.read_p99_us == legacy.read_p99_us
        assert event.write_p99_us == legacy.write_p99_us
        assert event.ssd_write_ops == legacy.ssd_write_ops
        assert event.ssd_write_blocks == legacy.ssd_write_blocks
        assert event.counters == legacy.counters
        assert event.n_measured == legacy.n_measured
        # A single serialised client never waits.
        assert event.queueing.wait_max_us == 0.0

    def test_collapse_with_verified_reads(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=300)
        event = run_benchmark(wl, make_system("icash", wl),
                              engine="event", load=_serial_load(),
                              verify_reads=True)
        assert event.verified_reads > 0


class TestDeterminism:
    def _one(self, keep_log=True):
        wl = SysBenchWorkload(scale=0.05, n_requests=300)
        system = make_system("icash", wl)
        system.ingest()
        engine = EventEngine(system, keep_event_log=keep_log)
        records = engine.run(wl, OpenLoopLoad(300_000.0, seed=42))
        return engine, records

    def test_same_seed_same_events_and_latencies(self):
        eng_a, recs_a = self._one()
        eng_b, recs_b = self._one()
        assert eng_a.event_log == eng_b.event_log
        assert len(eng_a.event_log) > 0
        assert [(r.wait_s, r.service_s, r.completion_s)
                for r in recs_a] == \
               [(r.wait_s, r.service_s, r.completion_s)
                for r in recs_b]

    def test_event_log_off_by_default(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=50)
        system = make_system("icash", wl)
        assert EventEngine(system).event_log is None


class TestEngineBehaviour:
    def test_latency_is_wait_plus_service(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=400)
        system = make_system("icash", wl)
        system.ingest()
        engine = EventEngine(system)
        # Drive well past capacity so queues actually form.
        records = engine.run(wl, OpenLoopLoad(5_000_000.0, seed=1))
        assert any(r.wait_s > 0 for r in records)
        for r in records:
            assert r.latency_s == r.wait_s + r.service_s
            assert r.completion_s >= r.arrival_s
            assert r.completion_s == pytest.approx(
                r.arrival_s + r.latency_s)

    def test_stations_respect_slot_capacity(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=400)
        system = make_system("icash", wl)
        system.ingest()
        engine = EventEngine(system)
        engine.run(wl, OpenLoopLoad(1_000_000.0, seed=3))
        summary = engine.summary()
        assert isinstance(summary, QueueingSummary)
        for st_summary in summary.stations.values():
            # Busy time can never exceed slots x elapsed.
            assert st_summary.busy_s <= \
                summary.duration_s * st_summary.slots * (1 + 1e-9)
            assert 0.0 <= st_summary.utilization <= 1.0 + 1e-9
        # I-CASH defers flush/scan work: it must have run as
        # background quanta on an otherwise foreground-free station.
        assert any(s.background_s > 0
                   for s in summary.stations.values())

    def test_background_yields_to_foreground(self):
        station = DeviceStation("hdd", slots=1)
        config = EngineConfig()
        # A foreground arrival waits at most one background quantum:
        # backlog is drained in bounded chunks, never as one span.
        wl = SysBenchWorkload(scale=0.05, n_requests=400)
        system = make_system("icash", wl)
        system.ingest()
        engine = EventEngine(system, config=config)
        records = engine.run(wl, OpenLoopLoad(2_000_000.0, seed=5))
        hdd = engine.stations["hdd"]
        if hdd.bg_chunks:
            assert hdd.bg_busy_s / hdd.bg_chunks <= \
                config.background_quantum_s + 1e-12
        assert station.depth == 0  # fresh station starts idle

    def test_engine_validation(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=50)
        system = make_system("icash", wl)
        with pytest.raises(ValueError, match="unknown engine"):
            run_benchmark(wl, system, engine="bogus")
        with pytest.raises(ValueError, match="engine='event'"):
            run_benchmark(wl, system, load=_serial_load())
        with pytest.raises(ValueError, match="at least one slot"):
            EngineConfig(default_slots=0).slots_for("hdd")


class TestLoadGenerators:
    def test_open_loop_validation(self):
        with pytest.raises(ValueError):
            OpenLoopLoad(0.0)
        with pytest.raises(ValueError):
            OpenLoopLoad(100.0, distribution="uniform")

    def test_closed_loop_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopLoad(0)
        with pytest.raises(ValueError):
            ClosedLoopLoad(4, think_s=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopLoad(4, distribution="pareto")

    def test_constant_spacing(self):
        load = OpenLoopLoad(1000.0, distribution="constant")
        load.reset()
        assert load.next_arrival(0.0) == pytest.approx(1e-3)
        assert load.next_arrival(5.0) == pytest.approx(5.001)

    def test_poisson_interarrivals_scale_with_rate(self):
        """Same seed at two rates => the same arrival pattern
        compressed in time (what keeps sweep curves monotone)."""
        slow, fast = OpenLoopLoad(100.0, seed=9), OpenLoopLoad(200.0,
                                                               seed=9)
        slow.reset()
        fast.reset()
        for _ in range(50):
            assert fast.next_arrival(0.0) == \
                pytest.approx(slow.next_arrival(0.0) / 2.0)

    def test_default_closed_loop_matches_workload(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=50)
        load = default_closed_loop(wl)
        assert load.clients == wl.io_concurrency
        assert load.think_s == pytest.approx(
            wl.app_compute_per_tx / wl.ios_per_transaction)

    def test_exponential_think_is_seeded(self):
        load = ClosedLoopLoad(4, think_s=1e-3,
                              distribution="exponential", seed=11)
        load.reset()
        first = [load.next_think() for _ in range(10)]
        load.reset()
        assert [load.next_think() for _ in range(10)] == first


class TestObservabilityIntegration:
    def test_queue_span_and_instruments(self):
        wl = SysBenchWorkload(scale=0.05, n_requests=400)
        system = make_system("icash", wl)
        tracer = RingBufferTracer()
        monitor = Monitor(interval_s=0.001)
        result = run_benchmark(wl, system, engine="event",
                               load=OpenLoopLoad(2_000_000.0, seed=2),
                               tracer=tracer, monitor=monitor,
                               warmup_fraction=0.0)
        names = {e.name for e in tracer.events}
        assert "queue" in names
        assert "request_start" in names
        # RunResult is properly typed now (the old Optional[object]).
        assert isinstance(result.series, SeriesStore)
        assert isinstance(result.slo_breaches, list)
        handle = io.StringIO()
        export_prometheus(monitor.registry, handle)
        text = handle.getvalue()
        for name in ("queue_wait_us", "queue_depth",
                     "device_utilization", "delta_log_corrupt_total",
                     "recovery_replays_total", "recovery_records_total"):
            assert name in text, f"{name} missing from export"

    def test_queue_spans_tile_the_request(self):
        """Downstream traces stay exact: wait + service children sum
        to the request span's duration."""
        wl = SysBenchWorkload(scale=0.05, n_requests=300)
        system = make_system("icash", wl)
        tracer = RingBufferTracer()
        run_benchmark(wl, system, engine="event",
                      load=OpenLoopLoad(2_000_000.0, seed=2),
                      tracer=tracer, warmup_fraction=0.0)
        by_req = {}
        for event in tracer.events:
            if event.req is not None and event.track == "request":
                by_req.setdefault(event.req, []).append(event)
        checked = 0
        for events in by_req.values():
            root = [e for e in events if e.name == "request_start"]
            if not root:
                continue
            queue = sum(e.dur for e in events if e.name == "queue")
            if queue > 0:
                assert queue < root[0].dur
                checked += 1
        assert checked > 0


class TestDeltaLogRecoveryCounters:
    """Satellite: the monotone counters behind the new instruments."""

    @staticmethod
    def _log() -> DeltaLog:
        return DeltaLog(HardDiskDrive(100_000), base_lba=50_000,
                        size_blocks=64)

    @staticmethod
    def _record(lba: int) -> DeltaRecord:
        return DeltaRecord(lba, 0, Delta(runs=((0, bytes(2000)),)))

    def test_corrupt_total_survives_replay_reset(self):
        log = self._log()
        _, slots, _ = log.append([self._record(1)])
        log.append([self._record(2)])
        log.corrupt_block(slots[0])
        list(log.replay())
        assert log.corrupt_blocks_skipped == 1
        assert log.corrupt_blocks_total == 1
        list(log.replay())
        # The per-replay attribute resets; the cumulative one must not.
        assert log.corrupt_blocks_skipped == 1
        assert log.corrupt_blocks_total == 2

    def test_replay_outcome_counters(self):
        log = self._log()
        log.append([self._record(1), self._record(2)])
        assert log.replay_count == 0
        first = list(log.replay())
        assert log.replay_count == 1
        assert log.replayed_records_total == len(first) == 2
        list(log.replay())
        assert log.replay_count == 2
        assert log.replayed_records_total == 4

    def test_append_overwrite_counts_toward_total(self):
        hdd = HardDiskDrive(100_000)
        log = DeltaLog(hdd, base_lba=50_000, size_blocks=2)
        _, slots, _ = log.append([self._record(0)])
        log.corrupt_block(slots[0])
        log.append([self._record(1)])
        log.append([self._record(2)])  # wraps onto the torn slot
        assert log.corrupt_blocks_total == 1


class TestLoadtestSweep:
    """The acceptance criteria: monotone curve, knee, p99 ordering."""

    @pytest.fixture(scope="class")
    def sweep(self):
        def factory():
            return SysBenchWorkload(scale=0.05, n_requests=500)

        capacity = loadtest.calibrate_capacity(factory, "icash")
        rates = loadtest.auto_rates(capacity, 5, span=(0.3, 1.6))
        return loadtest.sweep_rates(factory, "icash", rates, seed=7)

    def test_throughput_monotone_and_flattens(self, sweep):
        achieved = [p.achieved_rps for p in sweep]
        for before, after in zip(achieved, achieved[1:]):
            # Monotone within the arrival pattern's tolerance.
            assert after >= before * 0.97
        # Flattens: the last two (post-knee) points sit within a few
        # percent of each other while offered load keeps growing.
        assert achieved[-1] == pytest.approx(achieved[-2], rel=0.10)
        assert sweep[-1].offered_rps > sweep[-2].offered_rps * 1.15

    def test_knee_found_with_p99_blowup(self, sweep):
        knee = loadtest.find_knee(sweep)
        assert knee is not None and 0 < knee < len(sweep)
        pre = sweep[0]
        for point in sweep[knee:]:
            assert point.p99_ms > pre.p99_ms
            assert point.wait_mean_ms >= pre.wait_mean_ms

    def test_render_and_csv(self, sweep):
        text = loadtest.render_curve(sweep)
        assert "knee" in text
        assert "#" in text
        handle = io.StringIO()
        assert loadtest.export_curve_csv(sweep, handle) == len(sweep)
        lines = handle.getvalue().strip().splitlines()
        assert lines[0].startswith("offered_rps,achieved_rps,")
        assert len(lines) == len(sweep) + 1

    def test_find_knee_synthetic(self):
        def point(offered, achieved):
            return loadtest.RatePoint(
                offered_rps=offered, achieved_rps=achieved,
                n_measured=100, mean_ms=0.1, p99_ms=0.2,
                wait_mean_ms=0.0, bottleneck="ssd",
                bottleneck_util=0.5)

        flat = [point(100, 97), point(200, 194), point(400, 390)]
        assert loadtest.find_knee(flat) is None
        kneed = flat + [point(800, 500)]
        assert loadtest.find_knee(kneed) == 3
        assert loadtest.find_knee([]) is None

    def test_auto_rates(self):
        rates = loadtest.auto_rates(1000.0, 5, span=(0.5, 1.5))
        assert len(rates) == 5
        assert rates[0] == pytest.approx(500.0)
        assert rates[-1] == pytest.approx(1500.0)
        assert loadtest.auto_rates(1000.0, 1) == \
            pytest.approx([1000.0 * 0.95])
        with pytest.raises(ValueError):
            loadtest.auto_rates(1000.0, 0)
        with pytest.raises(ValueError):
            loadtest.auto_rates(1000.0, 3, span=(0.0, 1.0))


class TestLoadtestCLI:
    def test_smoke(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "curve.csv"
        code = main(["loadtest", "--workload", "sysbench",
                     "--requests", "300", "--points", "2",
                     "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrated capacity" in out
        assert csv_path.exists()
        assert len(csv_path.read_text().strip().splitlines()) == 3

    def test_explicit_rates(self, capsys):
        from repro.cli import main

        code = main(["loadtest", "--workload", "sysbench",
                     "--requests", "200", "--rates", "50000",
                     "--distribution", "constant"])
        assert code == 0
        assert "sweeping 1 explicit rates" in capsys.readouterr().out


class TestCapturePhaseOrderingUnderNCQ:
    """Satellite of the profiler PR: attribution depends on the capture
    tracer harvesting each request's phases at admission, in stream
    order — widening a station's NCQ window may only re-time requests,
    never re-order or re-shape their captured phase lists."""

    @staticmethod
    def _profiled(slots: int):
        from repro.sim.profile import Profiler

        wl = SysBenchWorkload(scale=0.05, n_requests=400, seed=21)
        profiler = Profiler()
        config = EngineConfig(device_slots={"ssd": slots, "raid0": 4,
                                            "nvram": 4, "dram": 64})
        result = run_benchmark(
            wl, make_system("icash", wl), engine="event",
            load=OpenLoopLoad(2e6, distribution="constant", seed=5),
            warmup_fraction=0.0, engine_config=config,
            profiler=profiler)
        return profiler.table, result

    def test_service_items_identical_across_slot_counts(self):
        # The profiler records at completion, and completion order is
        # exactly what NCQ reshuffles — so compare the multiset of
        # per-request phase lists: every request must keep the same
        # phases with the same durations, whatever slot count ran it.
        serial, _ = self._profiled(slots=1)
        ncq, _ = self._profiled(slots=8)
        stripped = sorted(
            [(request.op, device, phase, dur)
             for device, phase, dur in request.items
             if phase != "queue_wait"]
            for request in serial.requests)
        stripped_ncq = sorted(
            [(request.op, device, phase, dur)
             for device, phase, dur in request.items
             if phase != "queue_wait"]
            for request in ncq.requests)
        assert stripped == stripped_ncq

    def test_waits_shrink_with_more_slots(self):
        _, serial = self._profiled(slots=1)
        _, ncq = self._profiled(slots=8)
        assert ncq.queueing.wait_mean_us < serial.queueing.wait_mean_us
        # The work itself stays put: only waiting changed.
        assert ncq.counters == serial.counters
        assert ncq.ssd_write_ops == serial.ssd_write_ops


class TestCurveCsvStationColumns:
    """Satellite: sweep CSVs carry per-station utilisation and depth."""

    def test_station_columns_present_and_ordered(self):
        point = loadtest.RatePoint(
            offered_rps=100.0, achieved_rps=99.0, n_measured=50,
            mean_ms=0.1, p99_ms=0.3, wait_mean_ms=0.01,
            bottleneck="ssd", bottleneck_util=0.8,
            station_util={"ssd": 0.8, "hdd": 0.2},
            station_depth={"ssd": 2.5, "hdd": 0.1})
        handle = io.StringIO()
        assert loadtest.export_curve_csv([point], handle) == 1
        header, row = handle.getvalue().strip().splitlines()
        assert header == ("offered_rps,achieved_rps,n_measured,mean_ms,"
                          "p99_ms,wait_mean_ms,bottleneck,"
                          "bottleneck_util,util_hdd,util_ssd,"
                          "depth_hdd,depth_ssd")
        cells = row.split(",")
        assert float(cells[8]) == pytest.approx(0.2)   # util_hdd
        assert float(cells[9]) == pytest.approx(0.8)   # util_ssd
        assert float(cells[11]) == pytest.approx(2.5)  # depth_ssd

    def test_points_missing_a_station_default_to_zero(self):
        rich = loadtest.RatePoint(
            offered_rps=1.0, achieved_rps=1.0, n_measured=1,
            mean_ms=0.1, p99_ms=0.1, wait_mean_ms=0.0,
            bottleneck=None, bottleneck_util=0.0,
            station_util={"ssd": 0.5}, station_depth={"ssd": 1.0})
        bare = loadtest.RatePoint(
            offered_rps=2.0, achieved_rps=2.0, n_measured=1,
            mean_ms=0.1, p99_ms=0.1, wait_mean_ms=0.0,
            bottleneck=None, bottleneck_util=0.0)
        handle = io.StringIO()
        loadtest.export_curve_csv([rich, bare], handle)
        lines = handle.getvalue().strip().splitlines()
        assert lines[0].endswith("util_ssd,depth_ssd")
        assert lines[2].endswith("0.000000,0.000000")

    def test_real_sweep_populates_station_columns(self):
        def factory():
            return SysBenchWorkload(scale=0.05, n_requests=300)

        point, result = loadtest.run_rate_point(factory, "icash",
                                                50_000.0)
        assert set(point.station_util) == \
            set(result.queueing.stations)
        for name, summary in result.queueing.stations.items():
            assert point.station_util[name] == summary.utilization
            assert point.station_depth[name] == summary.mean_depth
