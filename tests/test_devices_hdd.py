"""Unit tests for the mechanical HDD model.

The property the whole paper rests on: sequential access is orders of
magnitude cheaper than random access.
"""

import pytest

from repro.devices.hdd import HardDiskDrive, HDDSpec
from repro.sim.request import BLOCK_SIZE


@pytest.fixture
def hdd() -> HardDiskDrive:
    return HardDiskDrive(capacity_blocks=100_000)


class TestSpec:
    def test_avg_rotation_half_revolution(self):
        spec = HDDSpec(rpm=7200)
        assert spec.avg_rotation_s == pytest.approx(60.0 / 7200 / 2)

    def test_seek_curve_monotone(self):
        spec = HDDSpec()
        capacity = 100_000
        seeks = [spec.seek_time(d, capacity)
                 for d in (0, 1, 100, 10_000, 100_000)]
        assert seeks[0] == 0.0
        assert all(a <= b for a, b in zip(seeks, seeks[1:]))
        assert seeks[-1] == pytest.approx(spec.max_seek_s)

    def test_transfer_time_scales_with_size(self):
        spec = HDDSpec(transfer_bytes_per_s=100e6)
        assert spec.transfer_time(1) == pytest.approx(BLOCK_SIZE / 100e6)
        assert spec.transfer_time(10) == pytest.approx(10 * spec.transfer_time(1))


class TestAccessPatterns:
    def test_sequential_after_positioning_is_transfer_only(self, hdd):
        hdd.read(1000, 1)  # position the head
        sequential = hdd.read(1001, 1)
        assert sequential == pytest.approx(hdd.spec.transfer_time(1))
        assert hdd.stats.count("sequential_accesses") == 1

    def test_random_access_is_milliseconds(self, hdd):
        hdd.read(0, 1)
        far = hdd.read(90_000, 1)
        assert far > 5e-3
        assert hdd.stats.count("random_accesses") >= 1

    def test_near_access_pays_track_to_track(self, hdd):
        hdd.read(1000, 1)
        near = hdd.read(1100, 1)  # within near_span_blocks
        expected = hdd.spec.min_seek_s + hdd.spec.avg_rotation_s \
            + hdd.spec.transfer_time(1)
        assert near == pytest.approx(expected)
        assert hdd.stats.count("near_accesses") == 1

    def test_sequential_run_much_cheaper_than_random(self, hdd):
        hdd.read(0, 1)
        seq_total = sum(hdd.read(i, 1) for i in range(1, 65))
        hdd2 = HardDiskDrive(100_000)
        positions = [(i * 7919) % 100_000 for i in range(64)]
        rand_total = sum(hdd2.read(p, 1) for p in positions)
        assert rand_total > 20 * seq_total

    def test_head_tracks_position(self, hdd):
        hdd.write(500, 4)
        assert hdd.head_position == 504

    def test_write_and_read_same_latency_model(self, hdd):
        read = hdd.read(5000, 2)
        hdd2 = HardDiskDrive(100_000)
        write = hdd2.write(5000, 2)
        assert read == pytest.approx(write)


class TestAccounting:
    def test_busy_time_accumulates(self, hdd):
        a = hdd.read(10, 1)
        b = hdd.write(99_000, 1)
        assert hdd.busy_time == pytest.approx(a + b)

    def test_op_counters(self, hdd):
        hdd.read(0, 3)
        hdd.write(10, 2)
        assert hdd.read_ops == 1
        assert hdd.write_ops == 1
        assert hdd.stats.count("read_blocks") == 3
        assert hdd.stats.count("write_blocks") == 2

    def test_bounds_checked(self, hdd):
        with pytest.raises(ValueError):
            hdd.read(99_999, 2)
        with pytest.raises(ValueError):
            hdd.write(-1, 1)
        with pytest.raises(ValueError):
            hdd.read(0, 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            HardDiskDrive(0)
