"""Unit tests for content sub-signatures (paper Section 4.2)."""

import numpy as np
import pytest

from repro.core.signatures import (SAMPLE_OFFSETS, SIGNATURE_VALUES,
                                   SUB_BLOCK_BYTES, SUB_BLOCKS,
                                   SignatureScheme, block_signatures,
                                   signature_overlap)
from repro.sim.request import BLOCK_SIZE

from conftest import make_block


class TestSampledScheme:
    def test_eight_signatures_per_block(self, random_block):
        sigs = block_signatures(random_block)
        assert len(sigs) == SUB_BLOCKS
        assert all(0 <= s < SIGNATURE_VALUES for s in sigs)

    def test_matches_paper_definition(self, random_block):
        """Sub-signature i = sum of bytes at offsets 0,16,32,64 of
        sub-block i, mod 256."""
        sigs = block_signatures(random_block)
        for i in range(SUB_BLOCKS):
            sub = random_block[i * SUB_BLOCK_BYTES:(i + 1) * SUB_BLOCK_BYTES]
            expected = sum(int(sub[o]) for o in SAMPLE_OFFSETS) & 0xFF
            assert sigs[i] == expected

    def test_deterministic(self, random_block):
        assert block_signatures(random_block) \
            == block_signatures(random_block.copy())

    def test_insensitive_to_unsampled_bytes(self):
        """The design point: a change outside the sampled offsets leaves
        the signature intact, so similar blocks keep matching."""
        block = make_block(0)
        sigs = block_signatures(block)
        block[5] = 0xFF  # offset 5 is not sampled
        assert block_signatures(block) == sigs

    def test_sensitive_to_sampled_bytes(self):
        block = make_block(0)
        sigs = block_signatures(block)
        block[16] = 1  # sampled offset in sub-block 0
        changed = block_signatures(block)
        assert changed[0] != sigs[0]
        assert changed[1:] == sigs[1:]

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            block_signatures(np.zeros(100, dtype=np.uint8))


class TestHashScheme:
    def test_hash_scheme_detects_identity_only(self, random_block):
        sigs = block_signatures(random_block, SignatureScheme.HASH)
        assert len(sigs) == SUB_BLOCKS
        # One changed unsampled byte flips the hash signature — exactly
        # why the paper rejects hashing for similarity detection.
        mutated = random_block.copy()
        mutated[5] ^= 0xFF
        assert block_signatures(mutated, SignatureScheme.HASH)[0] != sigs[0]

    def test_hash_scheme_deterministic(self, random_block):
        assert block_signatures(random_block, SignatureScheme.HASH) == \
            block_signatures(random_block.copy(), SignatureScheme.HASH)


class TestOverlap:
    def test_full_overlap(self):
        assert signature_overlap((1, 2, 3), (1, 2, 3)) == 3

    def test_partial_overlap_by_position(self):
        assert signature_overlap((1, 2, 3), (1, 9, 3)) == 2
        # Same values at different positions do not count.
        assert signature_overlap((1, 2), (2, 1)) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            signature_overlap((1,), (1, 2))

    def test_similar_blocks_overlap_highly(self, rng):
        """Blocks differing by a small patch keep most sub-signatures."""
        base = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
        variant = base.copy()
        variant[100:160] = 0  # one 60-byte patch in sub-block 0
        overlap = signature_overlap(block_signatures(base),
                                    block_signatures(variant))
        assert overlap >= SUB_BLOCKS - 1
